package prefetch

import "exysim/internal/satable"

// Standalone is the lower-level-cache prefetcher added in M5
// (§VIII-C/D): it observes the global access stream at the L2 — demand
// accesses and core-initiated prefetches alike — and detects stream
// patterns in physical-address space, so each stream is bounded to a 4KB
// page; learnings are reused across page crossings by re-seeding the new
// page with the old page's locked stride. A two-level adaptive scheme
// keeps accuracy high: in low-confidence mode, "phantom" prefetches go
// only into a filter and confidence accrues as demands match them; in
// high-confidence mode prefetches issue aggressively and accuracy is
// tracked through cache metadata (prefetched/demand-hit bits), demoting
// the engine when it drops.

// StandaloneConfig sizes the engine.
type StandaloneConfig struct {
	PageEntries int // concurrently tracked pages
	FilterSize  int // phantom-prefetch filter entries
	Lookahead   int // lines prefetched ahead in high-confidence mode
	// PromoteAt / DemoteAt bound the adaptive confidence counter.
	PromoteAt int
	DemoteAt  int
}

// DefaultStandaloneConfig returns the M5-era configuration.
func DefaultStandaloneConfig() StandaloneConfig {
	return StandaloneConfig{PageEntries: 32, FilterSize: 64, Lookahead: 8, PromoteAt: 8, DemoteAt: -4}
}

// StandaloneStats counts engine events.
type StandaloneStats struct {
	Phantoms    uint64
	Issued      uint64
	FilterHits  uint64
	Promotions  uint64
	Demotions   uint64
	PageReseeds uint64
}

// pageStream is one tracked page; the page number is the table key and
// recency lives in the table.
type pageStream struct {
	lastLine int // line offset within page (0..63)
	stride   int // locked stride in lines
	run      int // consecutive confirmations of the stride
}

// Standalone is the engine. Page streams live in a fixed set-associative
// table keyed by physical page number.
type Standalone struct {
	cfg   StandaloneConfig
	pages *satable.Table[pageStream]

	// filter holds phantom-prefetch line addresses in low-confidence
	// mode (§VIII-D Fig. 15); it is a FIFO over a preallocated backing
	// array, so steady-state operation never reallocates.
	filter []uint64

	conf     int
	highMode bool

	// lastStride remembers the most recent locked stride for page-cross
	// reuse (§VIII-C: "techniques to reuse learnings across 4KB physical
	// page crossings").
	lastStride int

	stats StandaloneStats

	// reqBuf is the reused request buffer returned by OnL2Access; its
	// contents are valid until the next call on this engine.
	reqBuf []Request
}

// NewStandalone builds the engine.
func NewStandalone(cfg StandaloneConfig) *Standalone {
	// The page table is small enough to be a fully associative CAM in
	// hardware; one set with PageEntries ways reproduces its global LRU.
	return &Standalone{
		cfg:    cfg,
		pages:  satable.New[pageStream](1, cfg.PageEntries),
		filter: make([]uint64, 0, cfg.FilterSize),
		reqBuf: make([]Request, 0, cfg.Lookahead),
	}
}

// Stats returns a snapshot.
func (s *Standalone) Stats() StandaloneStats { return s.stats }

// Reset restores the engine to its post-New cold state in place: the
// page table empties and the filter and request buffer rewind to length
// zero over their preallocated backing arrays.
func (s *Standalone) Reset() {
	s.pages.Reset()
	s.filter = s.filter[:0]
	s.conf = 0
	s.highMode = false
	s.lastStride = 0
	s.stats = StandaloneStats{}
	s.reqBuf = s.reqBuf[:0]
}

// HighConfidence reports the current mode.
func (s *Standalone) HighConfidence() bool { return s.highMode }

const pageLineCount = 64 // 4KB / 64B

// OnL2Access observes one access (demand or core prefetch) at the lower
// cache level and returns prefetches to issue. In low-confidence mode
// the returned slice is empty and phantoms go to the filter instead.
// The returned slice is reused across calls.
func (s *Standalone) OnL2Access(addr uint64, demand bool) []Request {
	page := addr >> 12
	line := int((addr >> 6) & (pageLineCount - 1))

	// Demands matching the phantom filter raise confidence (§VIII-D).
	if demand && !s.highMode {
		lineAddr := addr >> 6
		for i, f := range s.filter {
			if f == lineAddr {
				s.filter = append(s.filter[:i], s.filter[i+1:]...)
				s.stats.FilterHits++
				s.conf++
				if s.conf >= s.cfg.PromoteAt {
					s.highMode = true
					s.conf = s.cfg.PromoteAt
					s.stats.Promotions++
				}
				break
			}
		}
	}

	ps := s.pages.Lookup(page)
	if ps == nil {
		ps = s.admit(page, line)
		// Page-crossing reuse: seed the new page with the last locked
		// stride so the stream continues without retraining.
		if s.lastStride != 0 {
			ps.stride = s.lastStride
			ps.run = 2
			s.stats.PageReseeds++
			return s.emit(ps, page, line)
		}
		return nil
	}
	d := line - ps.lastLine
	if d == 0 {
		return nil
	}
	if ps.stride != 0 && d == ps.stride {
		ps.run++
	} else if ps.run > 0 && d != ps.stride {
		// Out-of-orderness at the lower level pollutes training
		// (§VIII-C); tolerate one mismatch before relocking.
		ps.run--
		ps.lastLine = line
		return nil
	} else {
		ps.stride = d
		ps.run = 1
	}
	ps.lastLine = line
	if ps.run < 2 {
		return nil
	}
	s.lastStride = ps.stride
	return s.emit(ps, page, line)
}

// emit produces the lookahead prefetches for a locked page stream; in
// low-confidence mode they become phantoms in the filter.
func (s *Standalone) emit(ps *pageStream, page uint64, line int) []Request {
	s.reqBuf = s.reqBuf[:0]
	cur := line
	for i := 0; i < s.cfg.Lookahead; i++ {
		cur += ps.stride
		if cur < 0 || cur >= pageLineCount {
			break // physical streams cannot cross the page (§VIII-C)
		}
		addr := page<<12 | uint64(cur)<<6
		if s.highMode {
			s.reqBuf = append(s.reqBuf, Request{Addr: addr})
			s.stats.Issued++
		} else {
			s.stats.Phantoms++
			lineAddr := addr >> 6
			dup := false
			for _, f := range s.filter {
				if f == lineAddr {
					dup = true
					break
				}
			}
			if !dup {
				if len(s.filter) >= s.cfg.FilterSize {
					// FIFO: shift down in place rather than reslicing,
					// keeping the backing array forever.
					copy(s.filter, s.filter[1:])
					s.filter = s.filter[:s.cfg.FilterSize-1]
				}
				s.filter = append(s.filter, lineAddr)
			}
		}
	}
	return s.reqBuf
}

// OnPrefetchOutcome feeds back cache-metadata accuracy from the lower
// levels: each standalone-prefetched line reports whether a demand hit
// it before eviction. Sustained inaccuracy demotes to low-confidence
// mode (§VIII-D).
func (s *Standalone) OnPrefetchOutcome(used bool) {
	if used {
		if s.conf < s.cfg.PromoteAt {
			s.conf++
		}
	} else {
		s.conf--
		if s.conf <= s.cfg.DemoteAt {
			if s.highMode {
				s.stats.Demotions++
			}
			s.highMode = false
			s.conf = 0
		}
	}
}

func (s *Standalone) admit(page uint64, line int) *pageStream {
	ps, _, _ := s.pages.Insert(page)
	ps.lastLine = line
	return ps
}
