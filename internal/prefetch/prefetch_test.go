package prefetch

import "testing"

// drive feeds the engine a miss sequence and collects issued addresses.
func drive(m *MultiStride, pc uint64, lines []uint64) map[uint64]bool {
	out := map[uint64]bool{}
	for _, l := range lines {
		for _, r := range m.OnMiss(pc, l<<6) {
			out[r.Addr>>6] = true
		}
		for _, r := range m.OnAccess(pc, l<<6) {
			out[r.Addr>>6] = true
		}
	}
	return out
}

func TestMSPLocksSimpleStride(t *testing.T) {
	m := NewMultiStride(DefaultMSPConfig())
	var lines []uint64
	for i := uint64(1); i <= 24; i++ {
		lines = append(lines, 1000+i*2)
	}
	got := drive(m, 0x100, lines)
	if m.Stats().Locks == 0 {
		t.Fatal("never locked a +2 stride")
	}
	// Lines ahead of the stream must have been prefetched.
	want := uint64(1000 + 25*2)
	if !got[want] {
		t.Fatalf("expected prefetch of line %d; got %d prefetches", want, len(got))
	}
}

func TestMSPLocksMultiStride(t *testing.T) {
	// The paper's example: +2,+2,+5 (§VII-A).
	m := NewMultiStride(DefaultMSPConfig())
	cur := uint64(5000)
	var lines []uint64
	pat := []uint64{2, 2, 5}
	for i := 0; i < 30; i++ {
		lines = append(lines, cur)
		cur += pat[i%3]
	}
	got := drive(m, 0x200, lines)
	if m.Stats().Locks == 0 {
		t.Fatal("never locked the multi-stride pattern")
	}
	// Future pattern addresses must appear.
	future := 0
	c := cur
	for i := 0; i < 6; i++ {
		if got[c] {
			future++
		}
		c += pat[i%3]
	}
	if future < 2 {
		t.Fatalf("only %d future pattern lines prefetched", future)
	}
}

func TestMSPDedupFilter(t *testing.T) {
	m := NewMultiStride(DefaultMSPConfig())
	m.OnMiss(0x300, 64<<6)
	trains := m.Stats().Trains
	m.OnMiss(0x300, 64<<6) // same line: filtered
	if m.Stats().Trains != trains {
		t.Fatal("duplicate-line training not filtered")
	}
}

func TestMSPDynamicDegreeScalesUp(t *testing.T) {
	cfg := DefaultMSPConfig()
	cfg.Integrated = true
	m := NewMultiStride(cfg)
	pc := uint64(0x400)
	cur := uint64(9000)
	for i := 0; i < 200; i++ {
		m.OnMiss(pc, cur<<6)
		m.OnAccess(pc, cur<<6)
		cur++
	}
	if got := m.Degree(pc); got <= cfg.MinDegree {
		t.Fatalf("degree never scaled: %d", got)
	}
	if m.Stats().DegreeUps == 0 {
		t.Fatal("no degree-up events")
	}
}

func TestMSPIntegratedConfirmsWhenPrefetchLags(t *testing.T) {
	// §VII-D: with the plain queue, confirmations need issued
	// prefetches; the integrated scheme confirms from the pattern
	// itself. Model a stream whose demand always leads generation by
	// resetting ahead: compare confirmation counts.
	plain := DefaultMSPConfig()
	plain.Integrated = false
	integ := DefaultMSPConfig()
	integ.Integrated = true
	run := func(cfg MSPConfig) uint64 {
		m := NewMultiStride(cfg)
		cur := uint64(100)
		for i := 0; i < 120; i++ {
			m.OnMiss(0x500, cur<<6)
			m.OnAccess(0x500, cur<<6)
			cur++
		}
		return m.Stats().Confirmations
	}
	p, q := run(plain), run(integ)
	if q < p {
		t.Fatalf("integrated (%d) should confirm at least as much as plain (%d)", q, p)
	}
}

func TestMSPSkipAheadOnOvertake(t *testing.T) {
	m := NewMultiStride(DefaultMSPConfig())
	pc := uint64(0x600)
	cur := uint64(100)
	for i := 0; i < 12; i++ {
		m.OnMiss(pc, cur<<6)
		cur++
	}
	// Demand jumps far ahead of the generator but stays on-pattern.
	m.OnMiss(pc, (cur+3)<<6)
	if m.Stats().SkipAheads == 0 {
		t.Skip("generator stayed ahead; skip-ahead not exercised")
	}
}

func TestMSPPatternBreakDropsLock(t *testing.T) {
	m := NewMultiStride(DefaultMSPConfig())
	pc := uint64(0x700)
	cur := uint64(100)
	for i := 0; i < 16; i++ {
		m.OnMiss(pc, cur<<6)
		cur++
	}
	if m.Stats().Locks == 0 {
		t.Fatal("no lock")
	}
	// Break the pattern hard, repeatedly.
	for i := 0; i < 4; i++ {
		m.OnMiss(pc, (cur+uint64(1000+i*777))<<6)
	}
	if m.Confirmed(pc) {
		t.Fatal("lock should have dropped after the pattern broke")
	}
}

func TestSMSLearnsRegionPattern(t *testing.T) {
	s := NewSMS(DefaultSMSConfig())
	primary := uint64(0x900)
	other := uint64(0x904)
	offsets := []uint64{0, 256, 1024, 1536}
	// Train over several regions: primary PC touches offset 0 first,
	// associates follow.
	for r := 0; r < 8; r++ {
		base := uint64(0x100000 + r*2048)
		s.OnMiss(primary, base+offsets[0], false)
		for _, off := range offsets[1:] {
			s.OnMiss(other, base+off, false)
		}
	}
	// New region: the primary miss should trigger associated prefetches.
	base := uint64(0x900000)
	reqs := s.OnMiss(primary, base, false)
	if len(reqs) == 0 {
		t.Fatal("no SMS predictions after training")
	}
	want := map[uint64]bool{base + 256: false, base + 1024: false, base + 1536: false}
	for _, r := range reqs {
		if _, ok := want[r.Addr]; ok {
			want[r.Addr] = true
		}
	}
	for a, got := range want {
		if !got {
			t.Fatalf("offset %#x not prefetched", a)
		}
	}
}

func TestSMSSuppressionBlocksTraining(t *testing.T) {
	s := NewSMS(DefaultSMSConfig())
	for r := 0; r < 8; r++ {
		base := uint64(0x200000 + r*2048)
		s.OnMiss(0xA00, base, true) // suppressed by multi-stride
	}
	if s.Stats().Suppressed == 0 {
		t.Fatal("suppression not counted")
	}
	if got := s.OnMiss(0xA00, 0x800000, false); len(got) != 0 {
		t.Fatal("suppressed training still produced predictions")
	}
}

func TestSMSConfidenceFiltersTransients(t *testing.T) {
	cfg := DefaultSMSConfig()
	s := NewSMS(cfg)
	primary := uint64(0xB00)
	for r := 0; r < 10; r++ {
		base := uint64(0x300000 + r*2048)
		s.OnMiss(primary, base, false)
		s.OnMiss(0xB04, base+512, false) // stable associate
		if r == 0 {
			s.OnMiss(0xB08, base+1792, false) // transient associate
		}
	}
	reqs := s.OnMiss(primary, 0xA00000, false)
	sawStable, sawTransientL1 := false, false
	for _, r := range reqs {
		if r.Addr == 0xA00000+512 && !r.FirstPassL2 {
			sawStable = true
		}
		if r.Addr == 0xA00000+1792 && !r.FirstPassL2 {
			sawTransientL1 = true
		}
	}
	if !sawStable {
		t.Fatal("stable associate not prefetched to L1")
	}
	if sawTransientL1 {
		t.Fatal("transient associate should not get a full prefetch")
	}
}

func TestBuddyIssuesNeighbour(t *testing.T) {
	b := &Buddy{}
	reqs := b.OnL2DemandMiss(0x1000)
	if len(reqs) != 1 || reqs[0].Addr != 0x1040 {
		t.Fatalf("buddy reqs %+v", reqs)
	}
	if reqs := b.OnL2DemandMiss(0x1040); reqs[0].Addr != 0x1000 {
		t.Fatal("buddy of odd line wrong")
	}
}

func TestBuddyFilterDisablesOnUselessness(t *testing.T) {
	b := &Buddy{}
	for i := 0; i < 64; i++ {
		b.OnL2DemandMiss(uint64(i) << 7)
		b.OnBuddyOutcome(false)
	}
	if !b.Stats().Disabled {
		t.Fatal("filter never disabled buddy prefetch")
	}
	before := b.Stats().Issued
	b.OnL2DemandMiss(0x99000)
	if b.Stats().Issued != before {
		t.Fatal("disabled buddy still issued")
	}
	// Sustained sampling drifts credit back up and re-enables.
	for i := 0; i < 64 && b.Stats().Disabled; i++ {
		b.OnL2DemandMiss(uint64(0x10_0000 + i*128))
	}
	if b.Stats().Disabled {
		t.Fatal("buddy never re-enabled")
	}
}

func TestStandaloneAdaptiveModes(t *testing.T) {
	cfg := DefaultStandaloneConfig()
	s := NewStandalone(cfg)
	if s.HighConfidence() {
		t.Fatal("must start in low-confidence mode")
	}
	// A clean stride stream within pages: phantoms match demands and
	// promote to high confidence.
	addr := uint64(0x400000)
	issued := 0
	for i := 0; i < 400; i++ {
		reqs := s.OnL2Access(addr, true)
		issued += len(reqs)
		addr += 64
	}
	if !s.HighConfidence() {
		t.Fatalf("never promoted: stats %+v", s.Stats())
	}
	if issued == 0 {
		t.Fatal("no prefetches issued after promotion")
	}
	// Sustained inaccuracy demotes.
	for i := 0; i < 100; i++ {
		s.OnPrefetchOutcome(false)
	}
	if s.HighConfidence() {
		t.Fatal("never demoted")
	}
}

func TestStandalonePageReseed(t *testing.T) {
	s := NewStandalone(DefaultStandaloneConfig())
	addr := uint64(0x800000)
	for i := 0; i < 200; i++ {
		s.OnL2Access(addr, true)
		addr += 64
	}
	if s.Stats().PageReseeds == 0 {
		t.Fatal("crossing pages never reseeded the stream (§VIII-C)")
	}
}

func TestStandaloneStaysInPage(t *testing.T) {
	cfg := DefaultStandaloneConfig()
	s := NewStandalone(cfg)
	// Force high mode quickly.
	addr := uint64(0xC00000)
	for i := 0; i < 400; i++ {
		for _, r := range s.OnL2Access(addr, true) {
			if r.Addr>>12 != addr>>12 {
				t.Fatalf("prefetch %#x crossed the page of %#x", r.Addr, addr)
			}
		}
		addr += 64
	}
}
