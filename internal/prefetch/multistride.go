// Package prefetch implements the paper's prefetch engines: the L1
// multi-stride prefetcher with its address reorder buffer, confirmation
// queues (plain, then integrated from M3), adaptive dynamic degree and
// one-pass/two-pass issue (§VII); the spatial-memory-streaming engine
// (§VII-C); the L2 buddy-sector prefetcher with its skip filter
// (§VIII-B); and the standalone lower-level-cache prefetcher with its
// two-level adaptive confidence scheme (§VIII-C/D).
package prefetch

import "exysim/internal/satable"

// Request is one prefetch the engine wants issued.
type Request struct {
	// Addr is the line-aligned virtual address to prefetch.
	Addr uint64
	// FirstPassL2 asks for a fill into the L2 only: the first pass of
	// the two-pass scheme (§VII-B) or a low-confidence SMS prefetch
	// (§VII-C).
	FirstPassL2 bool
}

// MSPConfig sizes the multi-stride prefetcher.
type MSPConfig struct {
	Streams      int // concurrently trained streams (per-PC entries)
	DeltaHistory int // reorder-buffer-fed delta history per stream
	MaxPeriod    int // longest multi-stride pattern detected
	MinDegree    int // initial prefetch degree of a new stream
	MaxDegree    int // degree cap ("can be very large (over 50)", §VII-B)
	// Integrated selects the M3+ integrated confirmation scheme; false
	// models the M1/M2 finite confirmation queue (§VII-D).
	Integrated bool
	// ConfQueueSize bounds the plain confirmation queue.
	ConfQueueSize int
	// ConfWindow is how many confirmations in a window raise the degree.
	ConfWindow int
}

// DefaultMSPConfig returns an M1-era configuration.
func DefaultMSPConfig() MSPConfig {
	return MSPConfig{
		Streams: 16, DeltaHistory: 12, MaxPeriod: 4,
		MinDegree: 2, MaxDegree: 16,
		Integrated: false, ConfQueueSize: 16, ConfWindow: 4,
	}
}

// MSPStats counts engine events.
type MSPStats struct {
	Trains        uint64
	Locks         uint64
	Issued        uint64
	Confirmations uint64
	DegreeUps     uint64
	DegreeDowns   uint64
	SkipAheads    uint64
}

// Fixed per-stream storage bounds; configs must fit inside them so a
// stream entry is one flat table slot with no per-field heap slices.
const (
	mspDeltaCap   = 16
	mspPatternCap = 8
	mspExpectCap  = 4
	mspQueueCap   = 32
)

type stream struct {
	lastLine uint64

	deltas  [mspDeltaCap]int64
	nDeltas int

	pattern [mspPatternCap]int64 // locked multi-stride pattern (line deltas)
	patLen  int
	patPos  int
	locked  bool

	genLine uint64 // next line the generator will prefetch
	ahead   int    // lines generated beyond last confirmation

	// prevObserved/obsPos track the last miss position on the pattern,
	// used both to verify pattern continuation and as the integrated
	// confirmation scheme's "last confirmed address" (§VII-D).
	prevObserved uint64
	obsPos       int

	degree int
	confs  int                  // confirmations within current window
	expect [mspExpectCap]uint64 // integrated confirmation addresses
	nExp   int

	queue  [mspQueueCap]uint64 // plain confirmation queue (issued prefetches)
	nQueue int
}

// MultiStride is the L1 stride engine (§VII-A/B/D). It trains on cache
// misses delivered in program order — the simulator's trace order stands
// in for the address reorder buffer of [27][28]; a same-line filter
// dedups entries as the real filter does. Streams live in a fixed
// set-associative table keyed by load PC.
type MultiStride struct {
	cfg     MSPConfig
	streams *satable.Table[stream]
	stats   MSPStats

	lastTrainLine uint64 // same-line dedup filter
	haveLast      bool

	// reqBuf is the reused request buffer returned by OnMiss/OnAccess;
	// its contents are valid until the next call on this engine.
	reqBuf []Request
}

// NewMultiStride builds the engine.
func NewMultiStride(cfg MSPConfig) *MultiStride {
	if cfg.DeltaHistory > mspDeltaCap || cfg.MaxPeriod > mspPatternCap || cfg.ConfQueueSize > mspQueueCap {
		panic("prefetch: MSP config exceeds fixed stream storage")
	}
	// The stream table is small enough to be a fully associative CAM in
	// hardware; one set with Streams ways reproduces its global LRU.
	return &MultiStride{
		cfg:     cfg,
		streams: satable.New[stream](1, cfg.Streams),
		reqBuf:  make([]Request, 0, cfg.MaxDegree),
	}
}

// Stats returns a snapshot.
func (m *MultiStride) Stats() MSPStats { return m.stats }

// Reset restores the engine to its post-New cold state in place: the
// stream table empties (per-stream degree is re-seeded on insert), the
// dedup filter and counters clear, and the request buffer keeps its
// capacity.
func (m *MultiStride) Reset() {
	m.streams.Reset()
	m.stats = MSPStats{}
	m.lastTrainLine = 0
	m.haveLast = false
	m.reqBuf = m.reqBuf[:0]
}

func (m *MultiStride) stream(pc uint64) *stream {
	if s := m.streams.Lookup(pc); s != nil {
		return s
	}
	s, _, _ := m.streams.Insert(pc)
	s.degree = m.cfg.MinDegree
	return s
}

// Confirmed reports whether pc currently has a locked stream — the
// suppression signal that stops SMS training on covered streams
// (§VII-C).
func (m *MultiStride) Confirmed(pc uint64) bool {
	s := m.streams.Peek(pc)
	return s != nil && s.locked && s.confs > 0
}

// OnMiss trains the engine with a demand miss (the engine trains on
// cache misses to use load-pipe bandwidth efficiently, §VII-A) and
// returns the prefetches to issue. The returned slice is reused across
// calls.
func (m *MultiStride) OnMiss(pc, addr uint64) []Request {
	line := addr >> 6
	// Address filter: deallocate duplicate entries to the same line.
	if m.haveLast && line == m.lastTrainLine {
		return nil
	}
	m.lastTrainLine, m.haveLast = line, true

	s := m.stream(pc)
	m.stats.Trains++
	// A demand miss is also a demand access: check it against the
	// confirmation state before training advances the pattern position.
	m.confirm(s, line)
	if s.lastLine != 0 {
		d := int64(line - s.lastLine)
		if d != 0 {
			if s.nDeltas == m.cfg.DeltaHistory {
				copy(s.deltas[:], s.deltas[1:s.nDeltas])
				s.nDeltas--
			}
			s.deltas[s.nDeltas] = d
			s.nDeltas++
		}
	}
	s.lastLine = line

	if !s.locked {
		m.tryLock(s)
		if !s.locked {
			return nil
		}
		s.genLine = line
		s.patPos = 0
		s.ahead = 0
		s.nExp = 0
	} else if !m.matchesPattern(s, line) {
		// Pattern broke: drop the lock, decay the degree.
		s.locked = false
		s.patLen = 0
		s.nDeltas = 0
		if s.degree > m.cfg.MinDegree {
			s.degree /= 2
			m.stats.DegreeDowns++
		}
		s.confs = 0
		return nil
	}

	// Demand overtaking the generator: skip ahead past the demand
	// stream instead of issuing redundant late prefetches (§VII-B).
	if s.locked && seqGE(line, s.genLine) {
		s.genLine = line
		s.ahead = 0
		m.stats.SkipAheads++
	}
	return m.generate(s)
}

// matchesPattern checks whether the miss continues the locked pattern
// from the stream's last position, tolerating the generator being ahead.
func (m *MultiStride) matchesPattern(s *stream, line uint64) bool {
	// Accept if line lies on the pattern within the next few steps from
	// the previous observed line.
	cur := s.prevObserved
	pos := s.obsPos
	for i := 0; i < 2*s.patLen+2; i++ {
		cur += uint64(s.pattern[pos%s.patLen])
		pos++
		if cur == line {
			s.prevObserved = cur
			s.obsPos = pos
			return true
		}
	}
	return false
}

// tryLock looks for a repeating multi-stride pattern (period <=
// MaxPeriod) in the delta history, e.g. +2,+2,+5 (§VII-A).
func (m *MultiStride) tryLock(s *stream) {
	n := s.nDeltas
	for p := 1; p <= m.cfg.MaxPeriod; p++ {
		if n < 2*p+1 {
			continue
		}
		// The candidate period must explain the entire delta history,
		// otherwise a +2,+2,+5 stream would false-lock period 1 on the
		// +2,+2 prefix and thrash.
		ok := true
		for i := p; i < n; i++ {
			if s.deltas[i] != s.deltas[i-p] {
				ok = false
				break
			}
		}
		if ok {
			copy(s.pattern[:p], s.deltas[n-p:n])
			s.patLen = p
			s.locked = true
			s.prevObserved = s.lastLine
			s.obsPos = 0
			m.stats.Locks++
			return
		}
	}
}

// generate issues prefetches up to the current degree ahead of the
// last confirmed position and refreshes the integrated confirmation
// addresses (§VII-D).
func (m *MultiStride) generate(s *stream) []Request {
	m.reqBuf = m.reqBuf[:0]
	for s.ahead < s.degree {
		s.genLine += uint64(s.pattern[s.patPos%s.patLen])
		s.patPos++
		s.ahead++
		m.reqBuf = append(m.reqBuf, Request{Addr: s.genLine << 6})
		m.stats.Issued++
		if !m.cfg.Integrated {
			if s.nQueue < m.cfg.ConfQueueSize {
				s.queue[s.nQueue] = s.genLine
				s.nQueue++
			}
		}
	}
	if m.cfg.Integrated {
		// Integrated confirmation: from the last confirmed address,
		// generate the next few expected demand addresses with the
		// same pattern logic, independent of prefetch generation.
		cur, pos := s.prevObserved, s.obsPos
		for i := 0; i < mspExpectCap; i++ {
			cur += uint64(s.pattern[pos%s.patLen])
			pos++
			s.expect[i] = cur
		}
		s.nExp = mspExpectCap
	}
	return m.reqBuf
}

// OnAccess observes demand hits for confirmations and degree scaling
// (§VII-B/D); demand misses confirm inside OnMiss. It may return more
// prefetches when a confirmation advances the window. The returned
// slice is reused across calls.
func (m *MultiStride) OnAccess(pc, addr uint64) []Request {
	s := m.streams.Lookup(pc)
	if s == nil || !s.locked {
		return nil
	}
	if !m.confirm(s, addr>>6) {
		return nil
	}
	return m.generate(s)
}

// confirm matches a demand access against the stream's confirmation
// state (integrated expectations or the plain queue) and applies the
// dynamic-degree rules.
func (m *MultiStride) confirm(s *stream, line uint64) bool {
	if !s.locked {
		return false
	}
	confirmed := false
	if m.cfg.Integrated {
		for i := 0; i < s.nExp; i++ {
			if s.expect[i] == line {
				confirmed = true
				// Drop the matched expectation and everything before it.
				copy(s.expect[:], s.expect[i+1:s.nExp])
				s.nExp -= i + 1
				break
			}
		}
	} else {
		for i := 0; i < s.nQueue; i++ {
			if s.queue[i] == line {
				confirmed = true
				copy(s.queue[i:], s.queue[i+1:s.nQueue])
				s.nQueue--
				break
			}
		}
	}
	if !confirmed {
		return false
	}
	m.stats.Confirmations++
	s.confs++
	if s.ahead > 0 {
		s.ahead--
	}
	// Enough confirmations within the window: raise the degree.
	if s.confs >= m.cfg.ConfWindow && s.degree < m.cfg.MaxDegree {
		s.degree *= 2
		if s.degree > m.cfg.MaxDegree {
			s.degree = m.cfg.MaxDegree
		}
		s.confs = 0
		m.stats.DegreeUps++
	}
	return true
}

// Degree exposes a stream's current degree (tests/ablation).
func (m *MultiStride) Degree(pc uint64) int {
	if s := m.streams.Peek(pc); s != nil {
		return s.degree
	}
	return 0
}

func seqGE(a, b uint64) bool { return int64(a-b) >= 0 }
