package prefetch_test

import (
	"fmt"

	"exysim/internal/prefetch"
)

// ExampleMultiStride shows the §VII-A engine locking onto the paper's
// +2x2,+5x1 multi-stride pattern and prefetching ahead of it.
func ExampleMultiStride() {
	m := prefetch.NewMultiStride(prefetch.DefaultMSPConfig())
	pc := uint64(0x1000)
	line := uint64(100)
	pattern := []uint64{2, 2, 5}
	var issued int
	for i := 0; i < 24; i++ {
		issued += len(m.OnMiss(pc, line<<6))
		line += pattern[i%3]
	}
	st := m.Stats()
	fmt.Println("locked a pattern:", st.Locks > 0)
	fmt.Println("issued prefetches:", issued > 0)
	// Output:
	// locked a pattern: true
	// issued prefetches: true
}

// ExampleSMS shows the §VII-C spatial engine learning a region's offset
// pattern from one primary load.
func ExampleSMS() {
	s := prefetch.NewSMS(prefetch.DefaultSMSConfig())
	primary, associate := uint64(0x500), uint64(0x504)
	for r := 0; r < 6; r++ {
		base := uint64(0x100000 + r*2048)
		s.OnMiss(primary, base, false)       // first miss: primary
		s.OnMiss(associate, base+512, false) // recurring associate
	}
	reqs := s.OnMiss(primary, 0x900000, false) // new region
	for _, r := range reqs {
		fmt.Printf("prefetch offset +%d\n", r.Addr-0x900000)
	}
	// Output:
	// prefetch offset +512
}
