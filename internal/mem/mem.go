// Package mem assembles the per-generation memory system: L1I/L1D, the
// sectored L2, the exclusive L3 (M3+), the TLB stack, all four prefetch
// engines, the MAB/fill-buffer limits, the one-pass/two-pass prefetch
// issue scheme, the coordinated exclusive-hierarchy castout management
// (§VIII-A), and the §IX DRAM path features. Its Load/Store/FetchInst
// methods return per-access latencies in core cycles; the pipeline model
// drives them with its current cycle, and Fig. 16 / Table IV come from
// the recorded load-latency population.
package mem

import (
	"exysim/internal/cache"
	"exysim/internal/dram"
	"exysim/internal/obs"
	"exysim/internal/prefetch"
	"exysim/internal/rng"
	"exysim/internal/stats"
	"exysim/internal/tlb"
	"exysim/internal/uncore"
)

// Config is one generation's memory system.
type Config struct {
	Name string

	L1I cache.Config
	L1D cache.Config
	L2  cache.Config
	L3  cache.Config // SizeKB == 0 means no L3 (M1/M2)

	// HasCascade enables the M4+ load-to-load cascading (3-cycle
	// effective L1 latency for pointer-chasing loads, §III).
	HasCascade bool

	// MABs bounds outstanding L1 misses (fill buffers on M1-M3, the
	// data-less memory address buffers from M4 on, §VII).
	MABs int

	DTLB        tlb.Config
	D15         tlb.Config // zero Entries = absent (pre-M3)
	ITLB        tlb.Config
	L2TLB       tlb.Config
	WalkLatency int

	// Prefetch engines; Enabled flags follow the generations.
	MSP           prefetch.MSPConfig
	HasSMS        bool // M3+
	SMS           prefetch.SMSConfig
	HasBuddy      bool // M4+
	HasStandalone bool // M5+
	Standalone    prefetch.StandaloneConfig
	// OnePassWatermark is how many first-pass L2 hits flip the MSP
	// issue into one-pass mode (§VII-B).
	OnePassWatermark int

	// Sharers is how many cores share the L2 (Table I: 4 on M1/M2,
	// private on M3/M4, 2 on M5/M6). With CoRunnerLoad > 0, the other
	// cluster cores inject background traffic into the shared levels,
	// consuming capacity and DRAM bandwidth — the contention that
	// motivated M3's move to a private L2 (§III).
	Sharers int
	// ClusterCores is the cluster size (4 cores through M3, 2 after);
	// co-runner traffic comes from the other ClusterCores-1 cores and
	// lands in the innermost shared level (the L2 when Sharers > 1,
	// else the L3) plus DRAM.
	ClusterCores int
	// CoRunnerLoad is the probability, per demand L1 miss, that each
	// co-runner injects one access into the shared hierarchy. Zero
	// (the default) models the paper's single-benchmark methodology.
	CoRunnerLoad float64

	Uncore uncore.Config
	DRAM   dram.Config
}

// Stats aggregates system-level results.
type Stats struct {
	Loads, Stores uint64
	LoadLat       stats.Summary

	L1DHits, L2Hits, L3Hits, MemHits                    uint64
	StoreForwards                                       uint64
	Writebacks                                          uint64
	InFlightHits                                        uint64 // demand caught an in-flight prefetch
	MABStallCycles                                      uint64
	TwoPassIssues, OnePassIssues                        uint64
	SpecReadSavings                                     uint64
	CastoutsElevated, CastoutsOrdinary, CastoutsDropped uint64
	CoRunnerL2Fills, CoRunnerL3Fills                    uint64
}

// System is one core's memory hierarchy instance.
type System struct {
	cfg Config

	l1i, l1d, l2 *cache.Cache
	l3           *cache.Cache // nil for M1/M2

	dtlbs tlb.Hierarchy
	itlbs tlb.Hierarchy

	msp        *prefetch.MultiStride
	sms        *prefetch.SMS
	buddy      *prefetch.Buddy
	standalone *prefetch.Standalone

	unc *uncore.Uncore

	// In-flight demand misses for the MAB limit.
	inflight []uint64

	// One-pass/two-pass state (§VII-B).
	onePass  bool
	fpL2Hits int

	// coRng drives co-runner traffic injection deterministically.
	coRng     *rng.RNG
	coPattern uint64

	// stb is a small store-buffer model for store-to-load forwarding:
	// recent store addresses (line-granular FIFO). A load hitting a
	// buffered store forwards at ALU-like latency without a cache probe.
	stb    [stbEntries]uint64
	stbPos int

	// pfSlot paces prefetch issue: engines can hand the system a burst
	// of requests in one call, but the machine issues them at L2-port
	// bandwidth, so a degree-40 ramp cannot slam forty DRAM reads into
	// one cycle ahead of younger demands.
	pfSlot uint64

	// tracer, when non-nil, records demand-miss and prefetch lifetimes.
	tracer *obs.Tracer

	st Stats
}

// pfIssueInterval is the pacing between issued prefetches (cycles), and
// pfMaxLead bounds how far the pacing queue may run ahead before
// further prefetches are dropped.
const (
	pfIssueInterval = 4
	pfMaxLead       = 240
)

// stbEntries sizes the store buffer (line-granular).
const stbEntries = 24

// stbForward reports whether addr's doubleword hits a buffered store.
func (s *System) stbForward(addr uint64) bool {
	dw := addr &^ 7
	for _, e := range s.stb {
		if e == dw {
			return true
		}
	}
	return false
}

func (s *System) stbInsert(addr uint64) {
	s.stb[s.stbPos] = addr &^ 7
	if s.stbPos++; s.stbPos == stbEntries {
		s.stbPos = 0
	}
}

// promoteCap bounds how long a demand can wait on an in-flight
// prefetched line: a demand hitting an in-flight prefetch promotes the
// request to demand priority at the memory controller. By then the
// prefetch has normally activated the row already, so the bound is the
// request/return path plus the column access.
func (s *System) promoteCap() uint64 {
	u := s.cfg.Uncore
	d := s.cfg.DRAM
	return uint64(2*u.CrossingCycles + u.QueueCycles + u.SnoopFilterCycles +
		d.TCAS + 2*u.CrossingCycles + u.QueueCycles)
}

// pacePrefetch returns the issue cycle for a prefetch requested at now,
// or ok=false when the prefetch queue is saturated and the request is
// dropped.
func (s *System) pacePrefetch(now uint64) (uint64, bool) {
	at := now
	if s.pfSlot > at {
		at = s.pfSlot
	}
	if at > now+pfMaxLead {
		return 0, false
	}
	s.pfSlot = at + pfIssueInterval
	return at, true
}

// New builds the system.
func New(cfg Config) *System {
	s := &System{cfg: cfg}
	s.l1i = cache.New(cfg.L1I)
	s.l1d = cache.New(cfg.L1D)
	s.l2 = cache.New(cfg.L2)
	if cfg.L3.SizeKB > 0 {
		s.l3 = cache.New(cfg.L3)
	}
	s.dtlbs = tlb.Hierarchy{L1: tlb.New(cfg.DTLB), L2: tlb.New(cfg.L2TLB), WalkLatency: cfg.WalkLatency}
	if cfg.D15.Entries > 0 {
		s.dtlbs.L15 = tlb.New(cfg.D15)
	}
	s.itlbs = tlb.Hierarchy{L1: tlb.New(cfg.ITLB), L2: tlb.New(cfg.L2TLB), WalkLatency: cfg.WalkLatency}
	s.msp = prefetch.NewMultiStride(cfg.MSP)
	if cfg.HasSMS {
		s.sms = prefetch.NewSMS(cfg.SMS)
	}
	if cfg.HasBuddy {
		s.buddy = &prefetch.Buddy{}
	}
	if cfg.HasStandalone {
		s.standalone = prefetch.NewStandalone(cfg.Standalone)
	}
	s.unc = uncore.New(cfg.Uncore, dram.New(cfg.DRAM))
	s.coRng = rng.New(0xC0F0EE ^ uint64(len(cfg.Name)))
	return s
}

// Config returns the generation configuration.
func (s *System) Config() Config { return s.cfg }

// Stats returns a snapshot.
func (s *System) Stats() Stats { return s.st }

// ResetStats clears counters, keeping all learned/warm state.
func (s *System) ResetStats() {
	s.st = Stats{}
	s.l1i.ResetStats()
	s.l1d.ResetStats()
	s.l2.ResetStats()
	if s.l3 != nil {
		s.l3.ResetStats()
	}
}

// Reset restores the whole memory system to its post-New cold state in
// place — caches, TLBs, prefetch engines, uncore/DRAM, the MAB list, the
// one-pass state, the co-runner RNG, and the store buffer — without
// reallocating any backing storage. The tracer and a ShareUncore
// replacement stay installed (the shared path is reset through whatever
// s.unc points to).
func (s *System) Reset() {
	s.l1i.Reset()
	s.l1d.Reset()
	s.l2.Reset()
	if s.l3 != nil {
		s.l3.Reset()
	}
	s.dtlbs.Reset()
	s.itlbs.Reset()
	s.msp.Reset()
	if s.sms != nil {
		s.sms.Reset()
	}
	if s.buddy != nil {
		s.buddy.Reset()
	}
	if s.standalone != nil {
		s.standalone.Reset()
	}
	s.unc.Reset()
	s.inflight = s.inflight[:0]
	s.onePass = false
	s.fpL2Hits = 0
	s.coRng.Reseed(0xC0F0EE ^ uint64(len(s.cfg.Name)))
	s.coPattern = 0
	s.stb = [stbEntries]uint64{}
	s.stbPos = 0
	s.pfSlot = 0
	s.st = Stats{}
}

// Uncore exposes the memory path (stats, ablations).
func (s *System) Uncore() *uncore.Uncore { return s.unc }

// SetTracer installs a cycle-event tracer on the memory system and its
// DRAM device (nil disables).
func (s *System) SetTracer(t *obs.Tracer) {
	s.tracer = t
	s.unc.DRAM().SetTracer(t)
}

// RegisterMetrics publishes the whole memory system into an
// observability scope: its own demand/castout counters, each cache
// level, the TLB stacks, every prefetch engine, the uncore path, and
// the DRAM device.
func (s *System) RegisterMetrics(sc *obs.Scope) {
	st := &s.st
	sc.Counter("loads", func() uint64 { return st.Loads })
	sc.Counter("stores", func() uint64 { return st.Stores })
	sc.Counter("l1d_hits", func() uint64 { return st.L1DHits })
	sc.Counter("l2_hits", func() uint64 { return st.L2Hits })
	sc.Counter("l3_hits", func() uint64 { return st.L3Hits })
	sc.Counter("dram_hits", func() uint64 { return st.MemHits })
	sc.Counter("store_forwards", func() uint64 { return st.StoreForwards })
	sc.Counter("writebacks", func() uint64 { return st.Writebacks })
	sc.Counter("inflight_hits", func() uint64 { return st.InFlightHits })
	sc.Counter("mab_stall_cycles", func() uint64 { return st.MABStallCycles })
	sc.Counter("two_pass_issues", func() uint64 { return st.TwoPassIssues })
	sc.Counter("one_pass_issues", func() uint64 { return st.OnePassIssues })
	sc.Counter("spec_read_savings", func() uint64 { return st.SpecReadSavings })
	sc.Counter("castouts_elevated", func() uint64 { return st.CastoutsElevated })
	sc.Counter("castouts_ordinary", func() uint64 { return st.CastoutsOrdinary })
	sc.Counter("castouts_dropped", func() uint64 { return st.CastoutsDropped })
	sc.Counter("corunner_l2_fills", func() uint64 { return st.CoRunnerL2Fills })
	sc.Counter("corunner_l3_fills", func() uint64 { return st.CoRunnerL3Fills })
	sc.Gauge("load_lat_mean", func() float64 { return st.LoadLat.Mean() })
	sc.Gauge("load_lat_max", func() float64 { return st.LoadLat.Max() })

	s.l1i.RegisterMetrics(sc.Child("l1i"))
	s.l1d.RegisterMetrics(sc.Child("l1d"))
	s.l2.RegisterMetrics(sc.Child("l2"))
	if s.l3 != nil {
		s.l3.RegisterMetrics(sc.Child("l3"))
	}
	tlbs := sc.Child("tlb")
	s.dtlbs.RegisterMetrics(tlbs.Child("d"))
	s.itlbs.RegisterMetrics(tlbs.Child("i"))

	pf := sc.Child("prefetch")
	msp := pf.Child("msp")
	msp.Counter("trains", func() uint64 { return s.msp.Stats().Trains })
	msp.Counter("locks", func() uint64 { return s.msp.Stats().Locks })
	msp.Counter("issued", func() uint64 { return s.msp.Stats().Issued })
	msp.Counter("confirmations", func() uint64 { return s.msp.Stats().Confirmations })
	msp.Counter("degree_ups", func() uint64 { return s.msp.Stats().DegreeUps })
	msp.Counter("degree_downs", func() uint64 { return s.msp.Stats().DegreeDowns })
	msp.Counter("skip_aheads", func() uint64 { return s.msp.Stats().SkipAheads })
	if s.sms != nil {
		sms := pf.Child("sms")
		sms.Counter("regions_trained", func() uint64 { return s.sms.Stats().RegionsTrained })
		sms.Counter("predictions", func() uint64 { return s.sms.Stats().Predictions })
		sms.Counter("issued_l1", func() uint64 { return s.sms.Stats().IssuedL1 })
		sms.Counter("issued_l2", func() uint64 { return s.sms.Stats().IssuedL2 })
		sms.Counter("suppressed", func() uint64 { return s.sms.Stats().Suppressed })
	}
	if s.buddy != nil {
		buddy := pf.Child("buddy")
		buddy.Counter("issued", func() uint64 { return s.buddy.Stats().Issued })
		buddy.Counter("used", func() uint64 { return s.buddy.Stats().Used })
		buddy.Counter("suppressed", func() uint64 { return s.buddy.Stats().Suppressed })
	}
	if s.standalone != nil {
		sa := pf.Child("standalone")
		sa.Counter("phantoms", func() uint64 { return s.standalone.Stats().Phantoms })
		sa.Counter("issued", func() uint64 { return s.standalone.Stats().Issued })
		sa.Counter("filter_hits", func() uint64 { return s.standalone.Stats().FilterHits })
		sa.Counter("promotions", func() uint64 { return s.standalone.Stats().Promotions })
		sa.Counter("demotions", func() uint64 { return s.standalone.Stats().Demotions })
		sa.Counter("page_reseeds", func() uint64 { return s.standalone.Stats().PageReseeds })
	}

	// Uncore and DRAM are read through the accessor so metrics follow a
	// ShareUncore replacement (the cluster arrangement of §I).
	unc := sc.Child("uncore")
	unc.Counter("reads", func() uint64 { return s.unc.Stats().Reads })
	unc.Counter("spec_issued", func() uint64 { return s.unc.Stats().SpecIssued })
	unc.Counter("spec_cancelled", func() uint64 { return s.unc.Stats().SpecCancelled })
	unc.Counter("early_activates", func() uint64 { return s.unc.Stats().EarlyActivates })
	unc.Counter("fastpath_returns", func() uint64 { return s.unc.Stats().FastPathReturns })
	dr := sc.Child("dram")
	dr.Counter("accesses", func() uint64 { return s.unc.DRAM().Stats().Accesses })
	dr.Counter("row_hits", func() uint64 { return s.unc.DRAM().Stats().RowHits })
	dr.Counter("row_misses", func() uint64 { return s.unc.DRAM().Stats().RowMisses })
	dr.Counter("row_conflicts", func() uint64 { return s.unc.DRAM().Stats().RowConflicts })
	dr.Counter("hints_honored", func() uint64 { return s.unc.DRAM().Stats().HintsHonored })
	dr.Counter("hints_ignored", func() uint64 { return s.unc.DRAM().Stats().HintsIgnored })
}

// originTraceName maps a prefetch origin to a static event name so
// tracing never allocates.
func originTraceName(origin uint8) string {
	switch origin {
	case cache.OriginMSP:
		return "pf-msp"
	case cache.OriginSMS:
		return "pf-sms"
	case cache.OriginBuddy:
		return "pf-buddy"
	case cache.OriginStandalone:
		return "pf-standalone"
	}
	return "pf-demand"
}

// ShareUncore replaces this system's memory path with a shared one, so
// several cores contend for the same DRAM banks and controller — the
// cluster arrangement of §I. Call before simulation starts.
func (s *System) ShareUncore(u *uncore.Uncore) { s.unc = u }

// MSP exposes the multi-stride engine (stats, tests).
func (s *System) MSP() *prefetch.MultiStride { return s.msp }

// Standalone exposes the standalone engine (may be nil).
func (s *System) Standalone() *prefetch.Standalone { return s.standalone }

// Buddy exposes the buddy engine (may be nil).
func (s *System) Buddy() *prefetch.Buddy { return s.buddy }

// L1D exposes the data cache (tests).
func (s *System) L1D() *cache.Cache { return s.l1d }

// L2 exposes the second-level cache (tests).
func (s *System) L2() *cache.Cache { return s.l2 }

// L3 exposes the last-level cache (nil for M1/M2).
func (s *System) L3() *cache.Cache { return s.l3 }

// pruneInflight drops retired misses.
func (s *System) pruneInflight(now uint64) {
	// Fast path: scan read-only until the first expired entry — usually
	// there is none, and the compaction stores are skipped entirely.
	i := 0
	for i < len(s.inflight) && s.inflight[i] > now {
		i++
	}
	if i == len(s.inflight) {
		return
	}
	out := s.inflight[:i]
	for _, t := range s.inflight[i+1:] {
		if t > now {
			out = append(out, t)
		}
	}
	s.inflight = out
}

// mabAdmit models the outstanding-miss limit: if all MABs are busy the
// access stalls until the earliest in-flight miss retires.
func (s *System) mabAdmit(now uint64) (uint64, int) {
	s.pruneInflight(now)
	if len(s.inflight) < s.cfg.MABs {
		return now, 0
	}
	earliest := s.inflight[0]
	for _, t := range s.inflight {
		if t < earliest {
			earliest = t
		}
	}
	stall := int(earliest - now)
	if stall < 0 {
		stall = 0
	}
	s.st.MABStallCycles += uint64(stall)
	if s.tracer != nil && stall > 0 {
		s.tracer.Span("mem", "mab-stall", now, uint64(stall), obs.LaneMem)
	}
	return earliest, stall
}

// memRead runs the full path below the L2: L3 (exclusive), then DRAM
// with the generation's §IX features. It returns the cycle data arrives
// at the cluster and fills the touched levels. critical marks
// latency-critical reads (demand load miss, instruction miss, walks).
func (s *System) memRead(addr uint64, now uint64, origin uint8, critical bool) (dataAt uint64, level int) {
	// M5 speculative read: launch toward memory in parallel with the
	// L3 tag lookup when the miss predictor says the line is absent.
	spec := s.unc.SpecReadStart(addr, critical)

	if s.l3 != nil {
		r := s.l3.Lookup(addr, now, false)
		if r.Hit {
			if spec {
				// Directory found the line in the bypassed caches:
				// cancel the speculative DRAM read.
				s.unc.NoteSpecCancelled()
			}
			s.unc.TrainMiss(addr, false)
			// Exclusive hierarchy: the line moves up, leaving the L3.
			s.l3.Invalidate(addr)
			dataAt = now + uint64(s.cfg.L3.Latency)
			if r.ReadyAt > dataAt {
				dataAt = r.ReadyAt
			}
			return dataAt, 3
		}
	}
	s.unc.TrainMiss(addr, true)
	issue := now
	if !spec {
		// Without the speculative bypass the request leaves for memory
		// only after the cache levels have been probed serially.
		if s.l3 != nil {
			issue += uint64(s.cfg.L3.Latency) / 2
		}
	} else {
		s.st.SpecReadSavings++
	}
	return s.unc.Read(addr, issue, critical, origin != cache.OriginDemand), 4
}

// l2Read probes the L2 and below. Returns data-arrival cycle and the
// level that supplied it (2, 3, 4). Fills the L2 on L2 misses.
func (s *System) l2Read(addr uint64, now uint64, origin uint8, critical, demand bool) (uint64, int) {
	if s.standalone != nil {
		for _, req := range s.standalone.OnL2Access(addr, demand) {
			s.standalonePrefetch(req, now)
		}
	}
	r := s.l2.Lookup(addr, now, false)
	if r.Hit {
		if r.WasPrefetch {
			s.feedbackPrefetchHit(addr)
		}
		dataAt := now + uint64(s.cfg.L2.Latency+s.l2.PortDelay(now))
		if r.ReadyAt > dataAt {
			dataAt = r.ReadyAt
			// In-flight prefetch promoted to demand priority.
			if demand {
				if cap := now + uint64(s.cfg.L2.Latency) + s.promoteCap(); dataAt > cap {
					dataAt = cap
				}
			}
		}
		return dataAt, 2
	}
	// L2 demand miss: buddy prefetch of the neighbour sector line
	// (§VIII-B).
	if demand && s.buddy != nil {
		for _, req := range s.buddy.OnL2DemandMiss(addr) {
			s.issueToL2(req.Addr, now, cache.OriginBuddy)
		}
	}
	dataAt, level := s.memRead(addr, now, origin, demand)
	s.fillL2(addr, now, dataAt, origin)
	return dataAt, level
}

// fillL2 installs a line into the L2, routing the castout victim
// through the coordinated exclusive-hierarchy policy (§VIII-A). The fill
// occupies the L2 port per Table I's per-generation bandwidth.
func (s *System) fillL2(addr uint64, now, readyAt uint64, origin uint8) {
	if d := s.l2.PortDelay(now); d > 0 {
		readyAt += uint64(d)
	}
	v := s.l2.Fill(addr, now, readyAt, origin, cache.InsertElevated)
	s.castout(v, now)
	// A fill that comes back after a previous castout is a
	// re-allocation; mark it so the next castout decision protects it.
	if s.l3 != nil {
		// The exclusive L3 no longer holds it (moved or absent), but if
		// it supplied the data the caller invalidated it; the Realloc
		// mark is set by memRead's L3-hit path via SetRealloc below.
	}
}

// castout implements the coordinated cache-hierarchy management: on an
// L2 eviction, the line's reuse/re-allocation metadata chooses an L3
// insertion in elevated state, ordinary state, or no allocation at all
// (§VIII-A). Prefetched-but-never-used lines also feed the engines'
// accuracy filters.
func (s *System) castout(v cache.Victim, now uint64) {
	if !v.Valid {
		return
	}
	s.feedbackEvict(&v.Line)
	if s.l3 == nil {
		// Dirty L2 victims write back to DRAM, occupying bank time at
		// writeback (prefetch-class) priority.
		if v.Line.Dirty {
			s.st.Writebacks++
			s.unc.Write(v.Addr, now)
		}
		return
	}
	switch {
	case v.Line.Prefetched && !v.Line.DemandHit && v.Line.Origin != cache.OriginDemand:
		// Dead prefetch: do not pollute the L3. (Second-pass prefetch
		// traffic is likewise filtered from reuse marking, §VIII-A.)
		s.st.CastoutsDropped++
		if v.Line.Dirty {
			s.st.Writebacks++
			s.unc.Write(v.Addr, now)
		}
	case v.Line.Reuse >= 2 || v.Line.Realloc:
		s.st.CastoutsElevated++
		lv := s.l3.Fill(v.Addr, now, now, cache.OriginDemand, cache.InsertElevated)
		s.l3.SetRealloc(v.Addr)
		if v.Line.Dirty {
			s.l3.Touch(v.Addr, true)
		}
		s.l3Writeback(lv, now)
	default:
		s.st.CastoutsOrdinary++
		lv := s.l3.Fill(v.Addr, now, now, cache.OriginDemand, cache.InsertOrdinary)
		if v.Line.Dirty {
			s.l3.Touch(v.Addr, true)
		}
		s.l3Writeback(lv, now)
	}
}

// l3Writeback sends a dirty L3 victim to DRAM.
func (s *System) l3Writeback(v cache.Victim, now uint64) {
	if v.Valid && v.Line.Dirty {
		s.st.Writebacks++
		s.unc.Write(v.Addr, now)
	}
}

// feedbackEvict routes eviction outcomes to the engines' filters.
func (s *System) feedbackEvict(l *cache.Line) {
	used := l.DemandHit || !l.Prefetched
	switch l.Origin {
	case cache.OriginBuddy:
		if s.buddy != nil {
			s.buddy.OnBuddyOutcome(used)
		}
	case cache.OriginStandalone:
		if s.standalone != nil {
			s.standalone.OnPrefetchOutcome(used)
		}
	}
}

// feedbackPrefetchHit rewards the owning engine when a demand first
// touches a prefetched line.
func (s *System) feedbackPrefetchHit(addr uint64) {
	if l := s.l2.Peek(addr); l != nil {
		switch l.Origin {
		case cache.OriginBuddy:
			if s.buddy != nil {
				s.buddy.OnBuddyOutcome(true)
			}
		case cache.OriginStandalone:
			if s.standalone != nil {
				s.standalone.OnPrefetchOutcome(true)
			}
		}
	}
}

// issueToL2 performs a prefetch fill into the L2 only (first-pass /
// buddy / standalone), without consuming an L1 MAB.
func (s *System) issueToL2(addr uint64, now uint64, origin uint8) {
	if s.l2.Contains(addr) {
		return
	}
	at, ok := s.pacePrefetch(now)
	if !ok {
		return
	}
	if d := s.l2.PortDelay(at); d > 0 {
		at += uint64(d)
	}
	dataAt, _ := s.memRead(addr, at, origin, false)
	if s.tracer != nil {
		// Prefetch lifetime: issue at `at`, line ready at dataAt.
		s.tracer.Span("prefetch", originTraceName(origin), at, dataAt-at, obs.LanePrefetch)
	}
	// Prefetch fills insert at MRU like demand fills: consecutive
	// ordinary-priority fills into one set would evict each other
	// before the demand arrives. Accuracy is policed by the engines'
	// confidence machinery, and dead prefetches are filtered at castout
	// time instead (§VIII-A).
	v := s.l2.Fill(addr, at, dataAt, origin, cache.InsertElevated)
	s.castout(v, at)
}

// standalonePrefetch issues a standalone-engine request toward L2/L3.
func (s *System) standalonePrefetch(req prefetch.Request, now uint64) {
	s.issueToL2(req.Addr, now, cache.OriginStandalone)
}

// corePrefetch issues an L1-targeted (multi-stride or SMS) prefetch,
// applying the one-pass/two-pass scheme (§VII-B): in two-pass mode the
// first pass fills only the L2 without taking an L1 miss buffer; in
// one-pass mode (entered when first-pass prefetches keep hitting in the
// L2) the line goes straight into the L1 when a MAB is free.
func (s *System) corePrefetch(req prefetch.Request, now uint64, origin uint8) {
	// Virtual-address prefetching crosses pages and pre-warms the TLBs
	// (§VII-A).
	s.dtlbs.Prefill(req.Addr)
	if s.l1d.Contains(req.Addr) {
		return
	}
	if req.FirstPassL2 {
		// Low-confidence SMS: only the outer-level prefetch.
		if !s.l2.Contains(req.Addr) {
			s.issueToL2(req.Addr, now, origin)
		}
		return
	}
	if !s.onePass {
		// Two-pass (§VII-B, Fig. 14): pass 1 sends a fill request to
		// the L2 without allocating an L1 miss buffer; pass 2 fills
		// the L1 as soon as a MAB is available (immediately, if one is
		// free). Track first-pass L2 hits for the one-pass watermark.
		s.st.TwoPassIssues++
		l2Resident := s.l2.Contains(req.Addr)
		if l2Resident {
			s.fpL2Hits++
			if s.fpL2Hits >= s.cfg.OnePassWatermark {
				s.onePass = true
			}
		} else {
			if s.fpL2Hits > 0 {
				s.fpL2Hits--
			}
			s.issueToL2(req.Addr, now, origin)
		}
		// Second pass: the L1 fill happens once the L2 holds the data
		// (step 4 of Fig. 14) and sufficient MABs are free — the
		// scheme's purpose is to keep miss buffers available for
		// demands (§VII-B), so prefetches take only the spare half and
		// never park a MAB on a far-future DRAM completion.
		s.pruneInflight(now)
		if len(s.inflight) < s.cfg.MABs/2 {
			if r := s.l2.Lookup(req.Addr, now, true); r.Hit && r.ReadyAt <= now+uint64(s.cfg.L2.Latency) {
				dataAt := now + uint64(s.cfg.L2.Latency)
				s.inflight = append(s.inflight, dataAt)
				v := s.l1d.Fill(req.Addr, now, dataAt, origin, cache.InsertElevated)
				if v.Valid && v.Line.Dirty {
					s.fillL2(v.Addr, now, now, cache.OriginDemand)
				}
			}
		}
		return
	}
	// One-pass: fill the L1 directly when a MAB is free (leaving
	// demand headroom); fall back to an L2 fill otherwise.
	s.st.OnePassIssues++
	s.pruneInflight(now)
	if len(s.inflight) >= s.cfg.MABs/2 {
		if !s.l2.Contains(req.Addr) {
			s.issueToL2(req.Addr, now, origin)
		}
		return
	}
	var dataAt uint64
	r := s.l2.Lookup(addrAlign(req.Addr), now, true)
	if r.Hit {
		dataAt = now + uint64(s.cfg.L2.Latency)
		if r.ReadyAt > dataAt {
			dataAt = r.ReadyAt
		}
	} else {
		dataAt, _ = s.l2Read(req.Addr, now, origin, false, false)
	}
	if s.tracer != nil {
		s.tracer.Span("prefetch", originTraceName(origin), now, dataAt-now, obs.LanePrefetch)
	}
	s.inflight = append(s.inflight, dataAt)
	v := s.l1d.Fill(req.Addr, now, dataAt, origin, cache.InsertElevated)
	if v.Valid && v.Line.Dirty {
		s.fillL2(v.Addr, now, now, cache.OriginDemand)
		s.l2.Touch(v.Addr, true) // the writeback data is dirty in the L2
	}
}

func addrAlign(a uint64) uint64 { return a &^ 63 }

// Load performs a demand load at cycle now and returns its latency in
// cycles. cascade marks a load whose address comes directly from a
// prior load (the M4+ load-load cascading path, §III). The recorded
// Fig. 16 / Table IV load latency is issue-to-data and excludes cycles
// spent waiting for a free miss buffer — those structural stalls still
// delay the pipeline but are not part of the load's own latency.
func (s *System) Load(pc, addr uint64, now uint64, cascade bool) int {
	s.st.Loads++
	lat, stall := s.access(pc, addr, now, false, cascade)
	s.st.LoadLat.Add(float64(lat - stall))
	return lat
}

// Store performs a demand store; stores allocate like loads (write-back,
// write-allocate) but their latency rarely gates retirement.
func (s *System) Store(pc, addr uint64, now uint64) int {
	s.st.Stores++
	lat, _ := s.access(pc, addr, now, true, false)
	s.l1d.Touch(addr, true)
	s.stbInsert(addr)
	return lat
}

// access returns the total pipeline-visible latency and the portion that
// was a structural MAB-availability stall.
func (s *System) access(pc, addr uint64, now uint64, store, cascade bool) (int, int) {
	tlbLat := s.dtlbs.Translate(addr)
	base := s.cfg.L1D.Latency
	if cascade && s.cfg.HasCascade {
		base-- // 3-cycle effective latency for load-load cascades
	}

	// Store-to-load forwarding: a load whose doubleword sits in the
	// store buffer gets its data from there at ALU-like latency. The
	// address still counts as a demand access for prefetch
	// confirmations (§VII-B) and keeps the line's recency.
	if !store && s.stbForward(addr) {
		s.st.StoreForwards++
		s.st.L1DHits++
		s.l1d.Lookup(addr, now, true)
		for _, req := range s.msp.OnAccess(pc, addr) {
			s.corePrefetch(req, now, cache.OriginMSP)
		}
		return 1 + tlbLat, 0
	}

	r := s.l1d.Lookup(addr, now, false)
	if r.Hit {
		s.st.L1DHits++
		lat := base
		if r.ReadyAt > now+uint64(base) {
			// Demand caught an in-flight prefetch: pay the remainder,
			// bounded by promotion to demand priority.
			rem := r.ReadyAt - now
			if cap := s.promoteCap(); rem > cap {
				rem = cap
			}
			lat = int(rem)
			s.st.InFlightHits++
		}
		// Confirmations may extend a locked stream.
		for _, req := range s.msp.OnAccess(pc, addr) {
			s.corePrefetch(req, now, cache.OriginMSP)
		}
		return lat + tlbLat, 0
	}

	// Co-runner interference on the shared levels (§III): each other
	// sharer may inject one background access per demand miss.
	s.injectCoRunners(now)

	// L1 miss: take a MAB (stalling if none free).
	start, stall := s.mabAdmit(now)
	dataAt, level := s.l2Read(addr, start, cache.OriginDemand, true, true)
	switch level {
	case 2:
		s.st.L2Hits++
	case 3:
		s.st.L3Hits++
	default:
		s.st.MemHits++
	}
	if s.tracer != nil {
		name := "demand-miss-dram"
		switch level {
		case 2:
			name = "demand-miss-l2"
		case 3:
			name = "demand-miss-l3"
		}
		s.tracer.Span("mem", name, start, dataAt-start, obs.LaneMem)
	}
	s.inflight = append(s.inflight, dataAt)
	v := s.l1d.Fill(addr, start, dataAt, cache.OriginDemand, cache.InsertElevated)
	if v.Valid && v.Line.Dirty {
		s.fillL2(v.Addr, start, start, cache.OriginDemand)
		s.l2.Touch(v.Addr, true) // the writeback data is dirty in the L2
	}

	// Train the L1 engines on the miss (a miss is also a demand access;
	// OnMiss checks confirmations internally).
	for _, req := range s.msp.OnMiss(pc, addr) {
		s.corePrefetch(req, start, cache.OriginMSP)
	}
	if s.sms != nil {
		for _, req := range s.sms.OnMiss(pc, addr, s.msp.Confirmed(pc)) {
			s.corePrefetch(req, start, cache.OriginSMS)
		}
	}

	return stall + int(dataAt-start) + tlbLat, stall
}

// injectCoRunners models the other cores of the cluster touching the
// shared hierarchy: a mostly-streaming background pattern fills the
// shared L2 (M1/M2, M5/M6) — or only the L3 behind a private L2 — and
// occupies DRAM bank time, eroding both effective capacity and
// bandwidth.
func (s *System) injectCoRunners(now uint64) {
	if s.cfg.CoRunnerLoad <= 0 || s.cfg.ClusterCores <= 1 {
		return
	}
	for i := 1; i < s.cfg.ClusterCores; i++ {
		if !s.coRng.Bool(s.cfg.CoRunnerLoad) {
			continue
		}
		// A distant streaming region per injection keeps the traffic
		// from aliasing with the workload's own data.
		s.coPattern += 64 * uint64(1+s.coRng.Intn(4))
		addr := 0x7_0000_0000 + s.coPattern%(64<<20)
		dataAt, _ := s.memRead(addr, now, cache.OriginDemand, false)
		if s.cfg.L3.SizeKB == 0 || s.sharedL2() {
			s.st.CoRunnerL2Fills++
			v := s.l2.Fill(addr, now, dataAt, cache.OriginDemand, cache.InsertOrdinary)
			s.castout(v, now)
		} else if s.l3 != nil {
			s.st.CoRunnerL3Fills++
			s.l3.Fill(addr, now, dataAt, cache.OriginDemand, cache.InsertOrdinary)
		}
	}
}

// sharedL2 reports whether the L2 itself is the shared level.
func (s *System) sharedL2() bool { return s.cfg.Sharers > 1 }

// FetchInst models the instruction-side path for a fetch of the line at
// pc, returning added stall cycles (0 on an L1I hit).
func (s *System) FetchInst(pc uint64, now uint64) int {
	tlbLat := s.itlbs.Translate(pc)
	r := s.l1i.Lookup(pc, now, false)
	if r.Hit {
		return tlbLat
	}
	dataAt, _ := s.l2Read(pc, now, cache.OriginDemand, true, true)
	s.l1i.Fill(pc, now, dataAt, cache.OriginDemand, cache.InsertElevated)
	return int(dataAt-now) + tlbLat
}

// DTLBWalks exposes data-side page-table walk counts (diagnostics).
func (s *System) DTLBWalks() uint64 { return s.dtlbs.Walks() }
