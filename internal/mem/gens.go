package mem

import (
	"exysim/internal/cache"
	"exysim/internal/dram"
	"exysim/internal/prefetch"
	"exysim/internal/tlb"
	"exysim/internal/uncore"
)

// Per-generation memory-system configurations, straight from Table I
// (caches, TLBs, latencies, outstanding misses) and §VII-§IX (prefetch
// engines and DRAM-path features). The average L2 latencies of 13.5 for
// the shared-by-two M5/M6 L2 are rounded up to 14 in this integer model.

// M1MemConfig returns the first-generation memory system.
func M1MemConfig() Config {
	return Config{
		Name:    "M1",
		L1I:     cache.Config{Name: "l1i", SizeKB: 64, Ways: 4, Latency: 4},
		L1D:     cache.Config{Name: "l1d", SizeKB: 32, Ways: 8, Latency: 4},
		L2:      cache.Config{Name: "l2", SizeKB: 2048, Ways: 16, SectorLog2: 1, Latency: 22, BytesPerCycle: 16},
		MABs:    8,
		Sharers: 4, ClusterCores: 4, // L2 shared by the 4-core cluster (Table I)

		DTLB:        tlb.Config{Name: "dtlb", Entries: 32, Ways: 32, Sectors: 1, Latency: 0},
		ITLB:        tlb.Config{Name: "itlb", Entries: 64, Ways: 64, Sectors: 4, Latency: 0},
		L2TLB:       tlb.Config{Name: "l2tlb", Entries: 1024, Ways: 4, Sectors: 1, Latency: 7},
		WalkLatency: 40,

		MSP: prefetch.MSPConfig{
			Streams: 16, DeltaHistory: 12, MaxPeriod: 4,
			MinDegree: 2, MaxDegree: 8, // bounded by 8 fill buffers
			Integrated: false, ConfQueueSize: 16, ConfWindow: 4,
		},
		OnePassWatermark: 16,

		Uncore: uncore.Config{
			CrossingCycles: 9, QueueCycles: 7, SnoopFilterCycles: 8,
			MissPredictorEntries: 1024,
		},
		DRAM: dram.DefaultConfig(),
	}
}

// M2MemConfig: no memory-hierarchy geometry changes over M1 (Table I);
// M2's gains came from deeper queues elsewhere in the core.
func M2MemConfig() Config {
	c := M1MemConfig()
	c.Name = "M2"
	return c
}

// M3MemConfig: private 512KB L2 at less than half the latency, a new
// 4MB exclusive L3, a 64KB L1D, the L1.5 DTLB, 12 outstanding misses,
// the integrated confirmation queue (§VII-D) and the SMS engine (§VII-C).
func M3MemConfig() Config {
	c := M2MemConfig()
	c.Name = "M3"
	c.L1D = cache.Config{Name: "l1d", SizeKB: 64, Ways: 8, Latency: 4}
	c.L2 = cache.Config{Name: "l2", SizeKB: 512, Ways: 8, SectorLog2: 1, Latency: 12, BytesPerCycle: 32}
	c.L3 = cache.Config{Name: "l3", SizeKB: 4096, Ways: 16, Latency: 37}
	c.MABs = 12
	c.Sharers = 1 // M3 made the L2 private (Table I); the L3 stays cluster-shared
	c.D15 = tlb.Config{Name: "d15tlb", Entries: 128, Ways: 4, Sectors: 4, Latency: 2}
	c.L2TLB = tlb.Config{Name: "l2tlb", Entries: 1024, Ways: 4, Sectors: 4, Latency: 7}
	c.ITLB = tlb.Config{Name: "itlb", Entries: 64, Ways: 64, Sectors: 8, Latency: 0}
	c.MSP.Integrated = true
	c.MSP.MaxDegree = 12
	c.HasSMS = true
	c.SMS = prefetch.DefaultSMSConfig()
	return c
}

// M4MemConfig: 1MB L2, 3MB L3, 4-way L1D with load-load cascading, the
// MAB approach with 32 outstanding misses, the 48-page DTLB, the buddy
// prefetcher (§VIII-B), and the dedicated DRAM fast path (§IX).
func M4MemConfig() Config {
	c := M3MemConfig()
	c.Name = "M4"
	c.L1D = cache.Config{Name: "l1d", SizeKB: 64, Ways: 4, Latency: 4}
	c.HasCascade = true
	c.L2 = cache.Config{Name: "l2", SizeKB: 1024, Ways: 8, SectorLog2: 1, Latency: 12, BytesPerCycle: 32}
	c.L3 = cache.Config{Name: "l3", SizeKB: 3072, Ways: 16, Latency: 37}
	c.MABs = 32
	c.ClusterCores = 2 // 4-core cluster -> 2-core cluster (§III)
	c.DTLB = tlb.Config{Name: "dtlb", Entries: 48, Ways: 48, Sectors: 1, Latency: 0}
	c.MSP.MaxDegree = 32
	c.HasBuddy = true
	c.Uncore.FastPath = true
	return c
}

// M5MemConfig: 2MB shared-by-two L2 (slightly higher average latency),
// faster 3MB L3, the standalone lower-level prefetcher (§VIII-C/D), and
// the speculative-read + early-page-activate DRAM features (§IX).
func M5MemConfig() Config {
	c := M4MemConfig()
	c.Name = "M5"
	c.L2 = cache.Config{Name: "l2", SizeKB: 2048, Ways: 8, SectorLog2: 1, Latency: 14, BytesPerCycle: 32}
	c.L3 = cache.Config{Name: "l3", SizeKB: 3072, Ways: 12, Latency: 30}
	c.Sharers = 2 // shared by two cores again (Table I)
	c.HasStandalone = true
	c.Standalone = prefetch.DefaultStandaloneConfig()
	c.Uncore.SpecRead = true
	c.Uncore.EarlyActivate = true
	return c
}

// M6MemConfig: 128KB L1s, 4MB L3, 40 outstanding misses, the 128-page
// DTLB and the 8K-page L2 TLB.
func M6MemConfig() Config {
	c := M5MemConfig()
	c.Name = "M6"
	c.L1I = cache.Config{Name: "l1i", SizeKB: 128, Ways: 4, Latency: 4}
	c.L2.BytesPerCycle = 64 // Table I: 64B/cycle on M6
	c.L1D = cache.Config{Name: "l1d", SizeKB: 128, Ways: 8, Latency: 4}
	c.L3 = cache.Config{Name: "l3", SizeKB: 4096, Ways: 16, Latency: 30}
	c.MABs = 40
	c.DTLB = tlb.Config{Name: "dtlb", Entries: 128, Ways: 128, Sectors: 1, Latency: 0}
	c.L2TLB = tlb.Config{Name: "l2tlb", Entries: 2048, Ways: 4, Sectors: 4, Latency: 7}
	c.MSP.MaxDegree = 40
	return c
}

// Generations returns the six memory configurations in order.
func Generations() []Config {
	return []Config{
		M1MemConfig(), M2MemConfig(), M3MemConfig(),
		M4MemConfig(), M5MemConfig(), M6MemConfig(),
	}
}
