package mem

import (
	"testing"

	"exysim/internal/isa"
	"exysim/internal/trace"
	"exysim/internal/workload"
)

// replayLoads drives a slice's memory accesses through the system with a
// simple advancing clock (one cycle per instruction plus latency echo),
// resetting stats after warmup. It returns the detailed-region stats.
func replayLoads(s *System, sl *trace.Slice) Stats {
	sl.Reset()
	// The driver advances its clock like a window-limited core: a load
	// may overlap at most `overlap` cycles of younger work, and a
	// dependent (cascade) load serializes completely. Without this, the
	// clock outruns memory bandwidth and queueing grows without bound —
	// a real core would have stalled.
	const overlap = 48
	now := uint64(1000)
	n := 0
	lastLoadDst := isa.RegNone
	for {
		in, err := sl.Next()
		if err != nil {
			break
		}
		n++
		now++
		switch in.Class {
		case isa.Load:
			cascade := in.Src1 != isa.RegNone && in.Src1 == lastLoadDst
			lat := s.Load(in.PC, in.Addr, now, cascade)
			done := now + uint64(lat)
			if cascade {
				now = done
			} else if done > now+overlap {
				now = done - overlap
			}
			lastLoadDst = in.Dst
		case isa.Store:
			s.Store(in.PC, in.Addr, now)
		}
		if n == sl.Warmup {
			s.ResetStats()
		}
	}
	return s.Stats()
}

func slice(t *testing.T, fam workload.Family, idx, n int) *trace.Slice {
	t.Helper()
	sl := fam.Gen(idx, n, n/4, 0xE59)
	if err := sl.Validate(); err != nil {
		t.Fatal(err)
	}
	return sl
}

func TestStackLoadsHitL1(t *testing.T) {
	s := New(M1MemConfig())
	sl := slice(t, workload.TightLoopFamily(), 0, 30000)
	st := replayLoads(s, sl)
	if st.Loads == 0 {
		t.Fatal("no loads")
	}
	hitRate := float64(st.L1DHits) / float64(st.Loads)
	if hitRate < 0.95 {
		t.Fatalf("tight kernel L1D hit rate %.3f", hitRate)
	}
	if st.LoadLat.Mean() > 6 {
		t.Fatalf("tight kernel avg load latency %.2f", st.LoadLat.Mean())
	}
}

func TestStreamPrefetchingCoversLatency(t *testing.T) {
	sl := slice(t, workload.StreamFamily(), 0, 60000)
	with := New(M3MemConfig())
	stWith := replayLoads(with, sl)
	// Disable the stride engine by zeroing its degree range.
	cfgNo := M3MemConfig()
	cfgNo.MSP.MinDegree = 0
	cfgNo.MSP.MaxDegree = 0
	cfgNo.HasSMS = false
	without := New(cfgNo)
	stWithout := replayLoads(without, sl)
	t.Logf("avg load lat with prefetch %.2f, without %.2f", stWith.LoadLat.Mean(), stWithout.LoadLat.Mean())
	if stWith.LoadLat.Mean() >= stWithout.LoadLat.Mean() {
		t.Fatal("stride prefetching should reduce streaming load latency")
	}
}

func TestSMSHelpsSpatialWorkload(t *testing.T) {
	sl := slice(t, workload.SMSFamily(), 0, 60000)
	cfgNoSMS := M3MemConfig()
	cfgNoSMS.HasSMS = false
	a := replayLoads(New(cfgNoSMS), sl)
	sl.Reset()
	b := replayLoads(New(M3MemConfig()), sl)
	t.Logf("avg load lat without SMS %.2f, with %.2f", a.LoadLat.Mean(), b.LoadLat.Mean())
	if b.LoadLat.Mean() > a.LoadLat.Mean() {
		t.Fatal("SMS should not hurt its target workload")
	}
}

func TestCascadeReducesChaseLatency(t *testing.T) {
	sl := slice(t, workload.TightLoopFamily(), 1, 30000)
	cfgNo := M4MemConfig()
	cfgNo.HasCascade = false
	a := replayLoads(New(cfgNo), sl)
	sl.Reset()
	b := replayLoads(New(M4MemConfig()), sl)
	if b.LoadLat.Mean() > a.LoadLat.Mean() {
		t.Fatalf("cascading should not increase latency: %.2f -> %.2f", a.LoadLat.Mean(), b.LoadLat.Mean())
	}
}

func TestGenerationalLoadLatencyFalls(t *testing.T) {
	// Table IV: average load latency falls 14.9 -> 8.3 across M1..M6.
	// The reproduction must be monotone non-increasing (within noise)
	// with a substantial total reduction.
	slices := []*trace.Slice{
		slice(t, workload.SpecIntFamily(), 0, 100000),
		slice(t, workload.WebFamily(), 0, 100000),
		slice(t, workload.ChaseFamily(), 0, 100000),
		slice(t, workload.StreamFamily(), 0, 100000),
		slice(t, workload.MobileFamily(), 0, 100000),
		slice(t, workload.SMSFamily(), 0, 100000),
		slice(t, workload.TightLoopFamily(), 0, 100000),
		slice(t, workload.GameFamily(), 0, 100000),
	}
	var lat []float64
	for _, cfg := range Generations() {
		sum := 0.0
		for _, sl := range slices {
			s := New(cfg)
			st := replayLoads(s, sl)
			sum += st.LoadLat.Mean()
		}
		// Table IV averages per-slice mean load latencies.
		lat = append(lat, sum/float64(len(slices)))
	}
	t.Logf("avg load latency by generation: %.2f", lat)
	if lat[5] >= lat[0]*0.75 {
		t.Fatalf("M6 (%.2f) should cut M1's latency (%.2f) by >25%%", lat[5], lat[0])
	}
	for i := 1; i < len(lat); i++ {
		if lat[i] > lat[i-1]*1.10 {
			t.Fatalf("generation %d regressed: %.2f -> %.2f", i+1, lat[i-1], lat[i])
		}
	}
}

func TestExclusiveHierarchy(t *testing.T) {
	s := New(M3MemConfig())
	addr := uint64(0x100000)
	now := uint64(100)
	s.Load(0x1, addr, now, false)
	// Force the line out of L1 and L2 by filling conflicting lines.
	l2sets := uint64(s.L2().Sets())
	for i := uint64(1); i <= 20; i++ {
		now += 400
		s.Load(0x1, addr+i*l2sets*128, now, false)
	}
	if s.L2().Contains(addr) {
		t.Skip("line not evicted from L2; geometry changed")
	}
	if !s.L3().Contains(addr) {
		t.Fatal("castout line should live in the exclusive L3")
	}
	// Loading it back must remove it from the L3 (exclusivity).
	now += 400
	s.Load(0x1, addr, now, false)
	if s.L3().Contains(addr) {
		t.Fatal("exclusive L3 kept a line that moved up")
	}
}

func TestMABLimitStalls(t *testing.T) {
	cfg := M1MemConfig() // 8 MABs
	s := New(cfg)
	now := uint64(10)
	// Burst of far-apart misses in the same cycle window exhausts MABs.
	for i := 0; i < 32; i++ {
		s.Load(uint64(0x10+i*4), uint64(0x40_000_000+i*1_000_000), now, false)
	}
	if s.Stats().MABStallCycles == 0 {
		t.Fatal("MAB limit never stalled a burst of 32 misses on an 8-MAB machine")
	}
	big := New(M6MemConfig()) // 40 MABs
	for i := 0; i < 32; i++ {
		big.Load(uint64(0x10+i*4), uint64(0x40_000_000+i*1_000_000), now, false)
	}
	if big.Stats().MABStallCycles >= s.Stats().MABStallCycles {
		t.Fatal("more MABs should stall less")
	}
}

func TestSpecReadReducesDRAMLatency(t *testing.T) {
	sl := slice(t, workload.ChaseFamily(), 1, 60000)
	cfgNo := M5MemConfig()
	cfgNo.Uncore.SpecRead = false
	cfgNo.Uncore.EarlyActivate = false
	a := replayLoads(New(cfgNo), sl)
	sl.Reset()
	b := replayLoads(New(M5MemConfig()), sl)
	t.Logf("chase avg load lat without §IX features %.2f, with %.2f", a.LoadLat.Mean(), b.LoadLat.Mean())
	if b.LoadLat.Mean() >= a.LoadLat.Mean() {
		t.Fatal("speculative read + early activate should reduce DRAM-bound latency")
	}
	if b.SpecReadSavings == 0 {
		t.Fatal("spec read never fired")
	}
}

func TestOnePassModeEngages(t *testing.T) {
	// A working set that fits in the L2: first-pass prefetches keep
	// hitting there, so the system must switch to one-pass (§VII-B).
	sl := slice(t, workload.TightLoopFamily(), 2, 40000)
	s := New(M1MemConfig())
	st := replayLoads(s, sl)
	_ = st
	if s.onePass == false && s.st.TwoPassIssues > 200 {
		t.Fatalf("one-pass mode never engaged after %d two-pass issues (fpHits=%d)",
			s.st.TwoPassIssues, s.fpL2Hits)
	}
}

func TestFetchInstPath(t *testing.T) {
	s := New(M1MemConfig())
	lat := s.FetchInst(0x400000, 100)
	if lat == 0 {
		t.Fatal("cold instruction fetch should stall")
	}
	if got := s.FetchInst(0x400000, 5000); got != 0 {
		t.Fatalf("warm fetch latency %d", got)
	}
}

func TestTableIIIGeometry(t *testing.T) {
	// Table III: L2/L3 sizes per generation.
	want := []struct {
		l2, l3 int
	}{
		{2048, 0}, {2048, 0}, {512, 4096}, {1024, 3072}, {2048, 3072}, {2048, 4096},
	}
	for i, cfg := range Generations() {
		if cfg.L2.SizeKB != want[i].l2 || cfg.L3.SizeKB != want[i].l3 {
			t.Fatalf("%s: L2 %dKB L3 %dKB, want %dKB/%dKB",
				cfg.Name, cfg.L2.SizeKB, cfg.L3.SizeKB, want[i].l2, want[i].l3)
		}
	}
}

func TestTableITranslationGeometry(t *testing.T) {
	cfgs := Generations()
	// L1 D-TLB pages: 32, 32, 32, 48, 48, 128.
	wantD := []int{32, 32, 32, 48, 48, 128}
	for i, cfg := range cfgs {
		if got := cfg.DTLB.Pages(); got != wantD[i] {
			t.Fatalf("%s DTLB pages %d, want %d", cfg.Name, got, wantD[i])
		}
	}
	// L1.5 exists only from M3 and maps 512 pages.
	for i, cfg := range cfgs {
		if i < 2 && cfg.D15.Entries != 0 {
			t.Fatalf("%s should have no L1.5 DTLB", cfg.Name)
		}
		if i >= 2 && cfg.D15.Pages() != 512 {
			t.Fatalf("%s L1.5 pages %d", cfg.Name, cfg.D15.Pages())
		}
	}
	// Shared L2 TLB pages: 1K, 1K, 4K, 4K, 4K, 8K.
	wantL2 := []int{1024, 1024, 4096, 4096, 4096, 8192}
	for i, cfg := range cfgs {
		if got := cfg.L2TLB.Pages(); got != wantL2[i] {
			t.Fatalf("%s L2TLB pages %d, want %d", cfg.Name, got, wantL2[i])
		}
	}
}

func TestStoreToLoadForwarding(t *testing.T) {
	s := New(M1MemConfig())
	now := uint64(100)
	addr := uint64(0x5000_0000)
	// Cold store then an immediate load of the same doubleword: the
	// load must forward from the store buffer at ~1 cycle.
	s.Store(0x10, addr, now)
	lat := s.Load(0x14, addr, now+1, false)
	if lat > 2 {
		t.Fatalf("forwarded load latency %d", lat)
	}
	if s.Stats().StoreForwards != 1 {
		t.Fatal("forward not counted")
	}
	// An unrelated doubleword does not forward.
	s.Load(0x18, addr+512, now+2, false)
	if s.Stats().StoreForwards != 1 {
		t.Fatal("false forward")
	}
}

func TestDirtyWritebacksReachDRAM(t *testing.T) {
	cfg := M1MemConfig() // no L3: dirty L2 victims write straight back
	s := New(cfg)
	now := uint64(100)
	// Dirty many lines mapping far apart, then stream past L2 capacity.
	l2Lines := uint64(cfg.L2.SizeKB) * 1024 / 64
	for i := uint64(0); i < l2Lines*2; i++ {
		s.Store(0x10, 0x4000_0000+i*128, now)
		now += 3
	}
	if s.Stats().Writebacks == 0 {
		t.Fatal("dirty evictions never wrote back")
	}
}
