package robust

import (
	"fmt"
	"math"
	"strings"

	"exysim/internal/core"
)

// Invariant bounds. The simulator models cores at most 6-wide and
// synthetic slices are tens of thousands of instructions, so these are
// generous physical envelopes, not tuning targets: a healthy result
// clears them by an order of magnitude, and anything outside them is
// simulator corruption, not a slow workload.
const (
	// MaxIPC bounds retired instructions per cycle (widest core is
	// 6-wide; 16 leaves room for future configs).
	MaxIPC = 16.0
	// MinIPC bounds the slow side: a slice that retires less than one
	// instruction per million cycles has livelocked in all but name.
	MinIPC = 1e-6
	// MaxLoadLat bounds the average load-to-use latency in cycles; DRAM
	// plus full queueing is hundreds of cycles, not tens of thousands.
	MaxLoadLat = 1e5
)

// violations accumulates invariant breaches for one result.
type violations struct{ list []string }

func (v *violations) addf(format string, args ...any) {
	v.list = append(v.list, fmt.Sprintf(format, args...))
}

func (v *violations) err() error {
	if len(v.list) == 0 {
		return nil
	}
	return fmt.Errorf("result invariants violated: %s", strings.Join(v.list, "; "))
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

// Check validates a completed slice result against physical invariants:
// work was done, derived metrics are finite and non-negative, rates stay
// in [0,1], cycle counts are consistent with instruction counts, and the
// power breakdown carries no poison values. It returns nil for a healthy
// result and a single error listing every violation otherwise — the
// sweep harness converts that into a KindInvariant quarantine, so silent
// nonsense can never flow into a population mean.
func Check(r *core.Result) error {
	var v violations

	if r.Insts == 0 {
		v.addf("no instructions retired")
	}
	if r.Cycles == 0 {
		v.addf("no cycles elapsed")
	}

	// Derived metrics: finite, non-negative, physically bounded.
	switch {
	case !finite(r.IPC):
		v.addf("IPC %v not finite", r.IPC)
	case r.IPC <= 0 && r.Insts > 0:
		v.addf("IPC %v not positive", r.IPC)
	case r.IPC > MaxIPC:
		v.addf("IPC %v above bound %v", r.IPC, MaxIPC)
	case r.IPC < MinIPC && r.Insts > 0:
		v.addf("IPC %v below bound %v (livelock?)", r.IPC, MinIPC)
	}
	if r.Insts > 0 && r.Cycles > 0 && finite(r.IPC) {
		want := float64(r.Insts) / float64(r.Cycles)
		if diff := math.Abs(r.IPC - want); diff > 1e-9*math.Max(1, want) {
			v.addf("IPC %v inconsistent with insts/cycles %v", r.IPC, want)
		}
	}
	switch {
	case !finite(r.MPKI):
		v.addf("MPKI %v not finite", r.MPKI)
	case r.MPKI < 0:
		v.addf("MPKI %v negative", r.MPKI)
	case r.MPKI > 1000:
		v.addf("MPKI %v exceeds 1000 (more mispredicts than instructions)", r.MPKI)
	}
	switch {
	case !finite(r.AvgLoadLat):
		v.addf("avg load latency %v not finite", r.AvgLoadLat)
	case r.AvgLoadLat < 0:
		v.addf("avg load latency %v negative", r.AvgLoadLat)
	case r.AvgLoadLat > MaxLoadLat:
		v.addf("avg load latency %v above bound %v", r.AvgLoadLat, MaxLoadLat)
	}
	if !finite(r.FetchEPKI) || r.FetchEPKI < 0 {
		v.addf("fetch EPKI %v not finite/non-negative", r.FetchEPKI)
	}
	for k, x := range r.PowerBreakdown {
		if !finite(x) || x < 0 {
			v.addf("power breakdown %q = %v not finite/non-negative", k, x)
		}
	}

	// Counter consistency: every rate that should live in [0,1].
	fr := &r.Front
	if fr.Mispredicts > fr.Branches {
		v.addf("mispredicts %d exceed branches %d", fr.Mispredicts, fr.Branches)
	}
	if fr.CondBranches > fr.Branches {
		v.addf("conditional branches %d exceed branches %d", fr.CondBranches, fr.Branches)
	}
	if fr.TakenBranches > fr.Branches {
		v.addf("taken branches %d exceed branches %d", fr.TakenBranches, fr.Branches)
	}
	if fr.Insts > 0 && fr.Branches > fr.Insts {
		v.addf("branches %d exceed instructions %d", fr.Branches, fr.Insts)
	}
	ms := &r.Mem
	if ms.L1DHits > ms.Loads+ms.Stores {
		v.addf("L1D hits %d exceed loads+stores %d", ms.L1DHits, ms.Loads+ms.Stores)
	}

	// Cycle/instruction consistency: the pipeline cannot retire wider
	// than MaxIPC, so cycles bound instructions from below.
	if r.Cycles > 0 && float64(r.Insts) > MaxIPC*float64(r.Cycles) {
		v.addf("%d instructions in %d cycles exceeds %v-wide retire", r.Insts, r.Cycles, MaxIPC)
	}

	return v.err()
}
