package robust

import (
	"bufio"
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"exysim/internal/core"
)

// CheckpointSchema versions the checkpoint file format.
const CheckpointSchema = "exysim-checkpoint/v1"

// Checkpoint file format: JSONL, one header line followed by one line
// per completed (generation, slice) result. Appends are line-atomic in
// practice and the loader tolerates a torn final line, so a run killed
// mid-write loses at most the entry being written. Results round-trip
// bit-identically (Go's float64 JSON encoding is shortest-exact), which
// is what lets a resumed sweep report population means bit-identical to
// an uninterrupted one.

// checkpointHeader is the first line of every checkpoint file. The spec
// digest pins the workload population and simulator configuration set,
// so a checkpoint can never be resumed against a different campaign.
type checkpointHeader struct {
	Schema     string `json:"schema"`
	SpecDigest string `json:"spec_digest"`
}

// CheckpointEntry records one completed (generation, slice) result.
type CheckpointEntry struct {
	Gen    int         `json:"g"`
	Slice  int         `json:"s"`
	Result core.Result `json:"result"`
}

// CheckpointWriter appends completed results to a JSONL checkpoint.
// It is safe for concurrent Append calls from sweep workers.
type CheckpointWriter struct {
	mu sync.Mutex
	f  *os.File
	w  *bufio.Writer
}

// CreateCheckpoint starts a fresh checkpoint at path (truncating any
// existing file) with a header pinning specDigest.
func CreateCheckpoint(path, specDigest string) (*CheckpointWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &CheckpointWriter{f: f, w: bufio.NewWriter(f)}
	hdr, _ := json.Marshal(checkpointHeader{Schema: CheckpointSchema, SpecDigest: specDigest})
	if err := w.writeLine(hdr); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// OpenCheckpoint opens path for appending after a resume; if the file
// does not exist (or is empty) it becomes a fresh checkpoint with a
// header for specDigest.
func OpenCheckpoint(path, specDigest string) (*CheckpointWriter, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	w := &CheckpointWriter{f: f, w: bufio.NewWriter(f)}
	if st.Size() == 0 {
		hdr, _ := json.Marshal(checkpointHeader{Schema: CheckpointSchema, SpecDigest: specDigest})
		if err := w.writeLine(hdr); err != nil {
			f.Close()
			return nil, err
		}
	}
	return w, nil
}

func (w *CheckpointWriter) writeLine(b []byte) error {
	if _, err := w.w.Write(b); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := w.w.WriteByte('\n'); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Flush every line: crash-safety is the point of the file, and at
	// population scale the per-slice write is noise next to simulation.
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}

// Append records one completed result.
func (w *CheckpointWriter) Append(e CheckpointEntry) error {
	b, err := json.Marshal(e)
	if err != nil {
		// A result that cannot serialize (NaN that slipped past the
		// invariant checker) must not tear the file.
		return fmt.Errorf("checkpoint: entry gen=%d slice=%d: %w", e.Gen, e.Slice, err)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writeLine(b)
}

// Close flushes and closes the checkpoint file.
func (w *CheckpointWriter) Close() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.w.Flush(); err != nil {
		w.f.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	return w.f.Close()
}

// ErrCheckpointMismatch reports a checkpoint whose header does not match
// the campaign being resumed (different schema or spec digest).
var ErrCheckpointMismatch = errors.New("checkpoint does not match this run's spec")

// LoadCheckpoint reads the completed entries from path. A missing file
// is an empty checkpoint (nil, nil). A header from a different spec or
// schema returns ErrCheckpointMismatch — resuming someone else's
// campaign would silently mix incompatible results. A torn final line
// (the run was killed mid-append) is dropped; everything before it
// loads.
func LoadCheckpoint(path, specDigest string) ([]CheckpointEntry, error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<24)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, fmt.Errorf("checkpoint: %w", err)
		}
		return nil, nil // empty file: nothing completed
	}
	var hdr checkpointHeader
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("checkpoint %s: bad header: %w", path, err)
	}
	if hdr.Schema != CheckpointSchema || hdr.SpecDigest != specDigest {
		return nil, fmt.Errorf("checkpoint %s (schema %s, digest %s): %w",
			path, hdr.Schema, hdr.SpecDigest, ErrCheckpointMismatch)
	}
	var out []CheckpointEntry
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var e CheckpointEntry
		if err := json.Unmarshal(line, &e); err != nil {
			// Torn trailing line from a killed run: keep what we have.
			break
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	return out, nil
}
