package robust

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"exysim/internal/core"
	"exysim/internal/workload"
)

// realEntries produces checkpoint entries from actual simulation so the
// round-trip test covers every Result field with live values (including
// the stats.Summary inside Mem, which needs custom JSON marshalling).
func realEntries(t *testing.T) []CheckpointEntry {
	t.Helper()
	slices := workload.Suite(tinySpec)
	gens := core.Generations()
	var out []CheckpointEntry
	for g := 0; g < 2; g++ {
		for s := 0; s < 2; s++ {
			out = append(out, CheckpointEntry{Gen: g, Slice: s, Result: core.RunSlice(gens[g], slices[s])})
		}
	}
	return out
}

func TestCheckpointRoundTripBitIdentical(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	entries := realEntries(t)

	w, err := CreateCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("round trip not bit-identical:\n  wrote: %+v\n  read:  %+v", entries, got)
	}
}

func TestCheckpointDigestMismatchRejected(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := CreateCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "digest-2"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatalf("want ErrCheckpointMismatch, got %v", err)
	}
}

func TestCheckpointMissingFileIsEmpty(t *testing.T) {
	got, err := LoadCheckpoint(filepath.Join(t.TempDir(), "nope.jsonl"), "digest-1")
	if err != nil || got != nil {
		t.Fatalf("missing file should load as empty, got %v, %v", got, err)
	}
}

func TestCheckpointTornFinalLineDropped(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	entries := realEntries(t)
	w, err := CreateCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Kill the run mid-append: chop the file mid-way through the last line.
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries[:len(entries)-1]) {
		t.Fatalf("torn line should drop only the final entry: got %d entries, want %d", len(got), len(entries)-1)
	}
}

func TestOpenCheckpointAppendsAfterResume(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	entries := realEntries(t)

	w, err := CreateCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Append(entries[0]); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume: reopen and append the rest; the header must not duplicate.
	w, err = OpenCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries[1:] {
		if err := w.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	got, err := LoadCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("resumed checkpoint lost entries: got %d, want %d", len(got), len(entries))
	}
}

func TestOpenCheckpointOnEmptyFileWritesHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck.jsonl")
	w, err := OpenCheckpoint(path, "digest-1")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path, "digest-1"); err != nil {
		t.Fatalf("fresh OpenCheckpoint file should load cleanly: %v", err)
	}
	if _, err := LoadCheckpoint(path, "other"); !errors.Is(err, ErrCheckpointMismatch) {
		t.Fatal("header missing after OpenCheckpoint on empty file")
	}
}
