package faultinject

import (
	"bytes"
	"errors"
	"io"
	"math"
	"testing"

	"exysim/internal/core"
	"exysim/internal/isa"
	"exysim/internal/trace"
	"exysim/internal/workload"
)

var tinySpec = workload.SuiteSpec{SlicesPerFamily: 1, InstsPerSlice: 8_000, WarmupFrac: 0.25, Seed: 0xE59}

func TestPanicAtFiresEveryTime(t *testing.T) {
	hook := PanicAt(3)
	hook(2, nil) // below the trigger: no panic
	for i := 0; i < 2; i++ {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("pass %d: PanicAt(3) did not fire at 3", i)
				}
			}()
			hook(3, nil)
		}()
	}
}

func TestPanicOnceFiresExactlyOnce(t *testing.T) {
	hook := PanicOnce(3)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("first pass should panic")
			}
		}()
		hook(3, nil)
	}()
	hook(3, nil) // second pass: the transient fault is gone
}

func TestResultCorruptors(t *testing.T) {
	sl := workload.Suite(tinySpec)[0]
	r := core.RunSlice(core.Generations()[0], sl)

	nan := r
	NaNIPC(&nan)
	if !math.IsNaN(nan.IPC) {
		t.Fatal("NaNIPC")
	}
	neg := r
	NegativeLoadLat(&neg)
	if neg.AvgLoadLat >= 0 {
		t.Fatal("NegativeLoadLat")
	}
	ovf := r
	CounterOverflow(&ovf)
	if ovf.Front.Mispredicts <= ovf.Front.Branches {
		t.Fatal("CounterOverflow")
	}
}

func TestTruncateSliceSharesBacking(t *testing.T) {
	sl := workload.Suite(tinySpec)[0]
	cut := TruncateSlice(sl, 100)
	if len(cut.Insts) != 100 || cut.Warmup > 100 {
		t.Fatalf("cut to %d insts, warmup %d", len(cut.Insts), cut.Warmup)
	}
	if &cut.Insts[0] != &sl.Insts[0] {
		t.Fatal("TruncateSlice should share the backing array, not copy")
	}
	if whole := TruncateSlice(sl, len(sl.Insts)*2); len(whole.Insts) != len(sl.Insts) {
		t.Fatal("over-length truncation should clamp")
	}
}

// encode serializes a real slice so the corruption tests work on genuine
// trace bytes.
func encode(t *testing.T) ([]byte, *trace.Slice) {
	t.Helper()
	sl := workload.Suite(tinySpec)[0]
	var buf bytes.Buffer
	if err := trace.Write(&buf, sl); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes(), sl
}

func TestTruncatedTraceReportsOffset(t *testing.T) {
	data, _ := encode(t)
	for _, n := range []int{0, 3, 10, len(data) / 2, len(data) - 1} {
		cut := Truncate(data, n)
		_, err := trace.Read(bytes.NewReader(cut))
		if err == nil {
			t.Fatalf("truncation at %d bytes decoded cleanly", n)
		}
		var fe *trace.FormatError
		if !errors.As(err, &fe) {
			t.Fatalf("truncation at %d: want *trace.FormatError, got %T: %v", n, err, err)
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Fatalf("truncation at %d should unwrap to ErrUnexpectedEOF: %v", n, err)
		}
		if fe.Offset < 0 || fe.Offset > int64(n) {
			t.Fatalf("truncation at %d: reported offset %d outside the input", n, fe.Offset)
		}
		if fe.Field == "" {
			t.Fatalf("truncation at %d: no field named: %v", n, err)
		}
	}
}

func TestCorruptMagicReportsHeader(t *testing.T) {
	data, _ := encode(t)
	_, err := trace.Read(bytes.NewReader(FlipByte(data, 0, 0xFF)))
	var fe *trace.FormatError
	if !errors.As(err, &fe) {
		t.Fatalf("want *trace.FormatError, got %v", err)
	}
	if fe.Record != -1 || fe.Field != "magic" {
		t.Fatalf("corrupt magic should blame the header: %+v", fe)
	}
}

func TestCorruptBodySurvivesOrFailsStructured(t *testing.T) {
	// Flipping bytes in the record stream must never panic: every
	// outcome is either a decoded (possibly wrong) slice that fails
	// validation, or a structured FormatError.
	data, _ := encode(t)
	for off := 6; off < len(data); off += 101 {
		sl, err := trace.Read(bytes.NewReader(FlipByte(data, off, 0x40)))
		if err != nil {
			var fe *trace.FormatError
			if !errors.As(err, &fe) {
				t.Fatalf("offset %d: unstructured decode error %T: %v", off, err, err)
			}
			continue
		}
		_ = sl.Validate() // may or may not fail; must not panic
	}
}

func TestCleanRoundTripStillWorks(t *testing.T) {
	data, sl := encode(t)
	got, err := trace.Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != sl.Name || len(got.Insts) != len(sl.Insts) {
		t.Fatal("round trip mangled the slice")
	}
}

func TestStallSleepsFromTriggerOn(t *testing.T) {
	hook := Stall(5, 0) // zero duration: just prove the branch logic
	var in isa.Inst
	hook(0, &in)
	hook(5, &in)
	hook(6, &in)
}
