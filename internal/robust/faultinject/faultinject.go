// Package faultinject is the test harness for the robustness layer: it
// manufactures exactly the failures internal/robust exists to contain —
// panics mid-slice, livelocks that must trip the watchdog, NaN/negative
// results that must trip the invariant checker, and truncated or
// corrupted trace bytes that must surface as structured decode errors.
// Nothing here belongs in a production run; the hooks plug into
// robust.Options and the byte-level helpers feed the trace decoder
// tests.
package faultinject

import (
	"math"
	"sync/atomic"
	"time"

	"exysim/internal/core"
	"exysim/internal/isa"
	"exysim/internal/trace"
)

// PanicAt returns a step hook that panics every time instruction n is
// reached — a persistent fault: retries with fresh simulators keep
// failing, so the slice must end up quarantined.
func PanicAt(n int) func(int, *isa.Inst) {
	return func(i int, _ *isa.Inst) {
		if i == n {
			panic("faultinject: injected panic")
		}
	}
}

// PanicOnce returns a step hook that panics the first time instruction n
// is reached and never again — a transient fault: the retry on a fresh
// simulator must succeed and produce a bit-identical result.
func PanicOnce(n int) func(int, *isa.Inst) {
	var fired atomic.Bool
	return func(i int, _ *isa.Inst) {
		if i == n && fired.CompareAndSwap(false, true) {
			panic("faultinject: injected transient panic")
		}
	}
}

// Stall returns a step hook that sleeps d on every instruction from
// inst n onward — a livelock stand-in that makes forward progress
// arbitrarily slow so the per-slice deadline must fire.
func Stall(n int, d time.Duration) func(int, *isa.Inst) {
	return func(i int, _ *isa.Inst) {
		if i >= n {
			time.Sleep(d)
		}
	}
}

// NaNIPC corrupts a completed result with a NaN IPC — the classic
// silent-poison value the invariant checker must quarantine.
func NaNIPC(r *core.Result) { r.IPC = math.NaN() }

// NegativeLoadLat corrupts a completed result with a negative average
// load latency.
func NegativeLoadLat(r *core.Result) { r.AvgLoadLat = -1 }

// CounterOverflow corrupts a completed result as an underflowed counter
// would: mispredicts exceeding the branch count.
func CounterOverflow(r *core.Result) { r.Front.Mispredicts = r.Front.Branches + 1 }

// TruncateSlice returns a copy of sl cut to its first n instructions
// (sharing the backing array). The cut tears control flow at the
// boundary, modelling a trace file that lost its tail.
func TruncateSlice(sl *trace.Slice, n int) *trace.Slice {
	if n > len(sl.Insts) {
		n = len(sl.Insts)
	}
	warm := sl.Warmup
	if warm > n {
		warm = n
	}
	return &trace.Slice{Name: sl.Name, Suite: sl.Suite, Warmup: warm, Insts: sl.Insts[:n]}
}

// Truncate returns the first n bytes of an encoded trace — a download or
// copy that died partway.
func Truncate(data []byte, n int) []byte {
	if n > len(data) {
		n = len(data)
	}
	return data[:n]
}

// FlipByte returns a copy of data with the byte at off XORed with mask —
// single-byte corruption in an encoded trace.
func FlipByte(data []byte, off int, mask byte) []byte {
	out := make([]byte, len(data))
	copy(out, data)
	if off >= 0 && off < len(out) {
		out[off] ^= mask
	}
	return out
}
