// Package robust is the fault-isolation layer for population sweeps:
// guarded slice execution that converts panics, livelocks, and
// silently-nonsensical results into structured, quarantinable failures
// instead of taking down (or tainting) a whole campaign. The paper's
// headline numbers come from a 4,026-slice sweep (§II); at that scale a
// run must survive one bad slice, one hung subsystem, or one corrupted
// pooled simulator and still report everything else.
//
// The package deliberately sits above internal/core and below
// internal/experiments: it knows how to run one slice safely, while the
// experiment harness decides pooling, retries, checkpointing, and
// reporting policy.
package robust

import (
	"fmt"
	"math/rand/v2"
	"runtime/debug"
	"time"

	"exysim/internal/core"
	"exysim/internal/isa"
	"exysim/internal/obs"
	"exysim/internal/trace"
)

// FailureKind classifies why a slice was quarantined.
type FailureKind string

// Failure kinds.
const (
	// KindPanic: the step loop panicked; the simulator's internal state
	// is suspect and the instance must be discarded, not recycled.
	KindPanic FailureKind = "panic"
	// KindTimeout: the slice exceeded its deadline (livelock, stall, or
	// pathological slowdown) and was abandoned mid-run.
	KindTimeout FailureKind = "timeout"
	// KindInvariant: the slice completed but its result violates a
	// physical invariant (NaN IPC, negative latency, rate outside [0,1]).
	KindInvariant FailureKind = "invariant"
	// KindCanceled: the caller canceled the run (aborted HTTP request,
	// Ctrl-C, server drain) and the slice was abandoned cooperatively at
	// a heartbeat. Not a defect: cancellation is never retried and never
	// quarantined — the sweep simply stops.
	KindCanceled FailureKind = "canceled"
)

// SliceFailure is the structured quarantine record for one failed
// (generation, slice) attempt: enough to reproduce (config digest, slice
// id), diagnose (kind, error, stack), and account (attempts).
type SliceFailure struct {
	Gen        string      `json:"gen"`
	Slice      string      `json:"slice"`
	GenIndex   int         `json:"gen_index"`
	SliceIndex int         `json:"slice_index"`
	Kind       FailureKind `json:"kind"`
	Err        string      `json:"error"`
	// Stack is the goroutine stack at recovery time (panics only).
	Stack string `json:"stack,omitempty"`
	// ConfigDigest pins the generation configuration that failed.
	ConfigDigest string `json:"config_digest,omitempty"`
	// Attempts is how many runs (initial + retries) were made before the
	// slice was quarantined.
	Attempts int `json:"attempts,omitempty"`
}

func (f *SliceFailure) String() string {
	return fmt.Sprintf("%s/%s: %s: %s", f.Gen, f.Slice, f.Kind, f.Err)
}

// StepHook observes (or perturbs) every instruction of a guarded run;
// n is the zero-based dynamic instruction index. Production runs leave
// it nil — the fault-injection harness uses it to panic, stall, or
// corrupt state at a chosen point.
type StepHook func(n int, in *isa.Inst)

// ResultHook runs over the completed Result before the invariant check —
// the fault-injection seam for NaN/negative-counter corruption, and an
// extension point for custom per-slice validation.
type ResultHook func(r *core.Result)

// DefaultHeartbeat is the instruction interval between deadline checks.
// It is a power of two so the check compiles to a mask, keeping the
// watchdog off the critical path: one predictable branch per
// instruction, one clock read per heartbeat, zero allocations.
const DefaultHeartbeat = 4096

// Options configures one guarded slice run.
type Options struct {
	// Deadline bounds the wall-clock time of one slice; 0 disables the
	// watchdog. The check is cooperative — it fires at the next
	// heartbeat, so a slice can overshoot by up to HeartbeatEvery
	// instructions' worth of work.
	Deadline time.Duration
	// HeartbeatEvery is the instruction interval between deadline
	// checks; it is rounded up to a power of two. 0 means
	// DefaultHeartbeat.
	HeartbeatEvery int
	// CheckInvariants runs Check over the completed result and converts
	// violations into KindInvariant failures.
	CheckInvariants bool
	// Cancel aborts the run cooperatively when closed (typically a
	// context's Done channel). Like the deadline it is polled at
	// heartbeat granularity, so a canceled slice stops within
	// HeartbeatEvery instructions instead of running to completion. A
	// nil channel disables the check.
	Cancel <-chan struct{}
	// HeartbeatHist, when non-nil, records the wall-clock microseconds
	// between consecutive watchdog heartbeats. The distribution is the
	// liveness signal of the sweep fabric: a healthy slice beats every
	// few hundred microseconds, while a fat tail means some instruction
	// window is stalling the step loop. Recording is lock-free and
	// allocation-free; a nil histogram adds no clock reads at all.
	HeartbeatHist *obs.Histogram
	// StepHook / ResultHook are fault-injection and extension seams;
	// both are nil in production runs.
	StepHook   StepHook
	ResultHook ResultHook
	// AfterWarmup fires once, immediately after the warmup boundary's
	// stats reset — the seam where warm-state forking captures the
	// simulator (core.Simulator.CaptureState). It never fires for a
	// slice without a warmup prefix, nor for a forked run that starts
	// at the boundary.
	AfterWarmup func()
}

func (o *Options) heartbeatMask() int {
	hb := o.HeartbeatEvery
	if hb <= 0 {
		hb = DefaultHeartbeat
	}
	// Round up to a power of two so the loop tests n&mask instead of n%hb.
	p := 1
	for p < hb {
		p <<= 1
	}
	return p - 1
}

// RunGuarded replays sl on sim under opts, reproducing exactly the
// warmup/measure protocol of core.Simulator.Run: for a healthy slice the
// returned Result is bit-identical to sim.Run(sl). On failure it returns
// a SliceFailure (with Gen/Slice/ConfigDigest filled in) and the
// simulator must be treated as corrupted: Reset() is not enough after a
// panic or timeout, because internal state may have been torn mid-update
// — discard the instance.
func RunGuarded(sim *core.Simulator, sl *trace.Slice, opts Options) (res core.Result, fail *SliceFailure) {
	cfg := sim.Config()
	mkFail := func(kind FailureKind, err string, stack string) *SliceFailure {
		return &SliceFailure{
			Gen: cfg.Name, Slice: sl.Name,
			Kind: kind, Err: err, Stack: stack,
			ConfigDigest: obs.ConfigDigest(cfg),
		}
	}
	defer func() {
		if p := recover(); p != nil {
			res = core.Result{}
			fail = mkFail(KindPanic, fmt.Sprint(p), string(debug.Stack()))
		}
	}()

	start := time.Now()
	mask := opts.heartbeatMask()
	deadline := opts.Deadline
	cancel := opts.Cancel
	hbHist := opts.HeartbeatHist
	lastBeat := start

	sl.Reset()
	c := sim.Core()
	n := 0
	for {
		in, err := sl.Next()
		if err != nil {
			break
		}
		if opts.StepHook != nil {
			opts.StepHook(n, &in)
		}
		c.Step(&in)
		n++
		if n == sl.Warmup {
			c.ResetStats()
			if opts.AfterWarmup != nil {
				opts.AfterWarmup()
			}
		}
		if n&mask == 0 {
			if hbHist != nil {
				now := time.Now()
				hbHist.Observe(uint64(now.Sub(lastBeat).Microseconds()))
				lastBeat = now
			}
			if cancel != nil {
				select {
				case <-cancel:
					return core.Result{}, mkFail(KindCanceled,
						fmt.Sprintf("run canceled after %d instructions", n), "")
				default:
				}
			}
			if deadline > 0 && time.Since(start) > deadline {
				return core.Result{}, mkFail(KindTimeout,
					fmt.Sprintf("slice exceeded %v deadline after %d instructions", deadline, n), "")
			}
		}
	}
	res = sim.Snapshot(sl)
	if opts.ResultHook != nil {
		opts.ResultHook(&res)
	}
	if opts.CheckInvariants {
		if err := Check(&res); err != nil {
			return core.Result{}, mkFail(KindInvariant, err.Error(), "")
		}
	}
	return res, nil
}

// RunGuardedDecoded is RunGuarded over a pre-decoded stream: the step
// loop indexes the slice's shared read-only instruction storage and its
// compiled decode metadata directly, with no per-instruction copy and no
// heap traffic — the production fast path for population sweeps. from is
// the stream position to start at: 0 for a full warmup+measure replay
// (bit-identical to RunGuarded), or the slice's Warmup for a run forked
// from a warm-state snapshot the caller just restored (the warmup
// boundary's stats reset already happened before the capture, so none is
// performed).
//
// A non-nil StepHook forces the classic path: hooks may mutate the
// instruction they observe, which must not reach the shared stream.
// From 0 that is a transparent fallback; a forked run with a hook is a
// contract violation and fails the slice rather than corrupting storage.
func RunGuardedDecoded(sim *core.Simulator, pd *trace.PreDecoded, from int, opts Options) (res core.Result, fail *SliceFailure) {
	sl := pd.Slice
	cfg := sim.Config()
	mkFail := func(kind FailureKind, err string, stack string) *SliceFailure {
		return &SliceFailure{
			Gen: cfg.Name, Slice: sl.Name,
			Kind: kind, Err: err, Stack: stack,
			ConfigDigest: obs.ConfigDigest(cfg),
		}
	}
	if opts.StepHook != nil {
		if from != 0 {
			return core.Result{}, mkFail(KindInvariant,
				"decoded fork with a step hook: hooks require the classic full replay", "")
		}
		cur := sl.Cursor()
		return RunGuarded(sim, &cur, opts)
	}
	defer func() {
		if p := recover(); p != nil {
			res = core.Result{}
			fail = mkFail(KindPanic, fmt.Sprint(p), string(debug.Stack()))
		}
	}()

	start := time.Now()
	mask := opts.heartbeatMask()
	deadline := opts.Deadline
	cancel := opts.Cancel
	hbHist := opts.HeartbeatHist
	lastBeat := start

	c := sim.Core()
	insts, meta := sl.Insts, pd.Meta
	warm := sl.Warmup
	n := 0
	for i := from; i < len(insts); i++ {
		c.StepDecoded(&insts[i], meta[i])
		n++
		if i+1 == warm {
			c.ResetStats()
			if opts.AfterWarmup != nil {
				opts.AfterWarmup()
			}
		}
		if n&mask == 0 {
			if hbHist != nil {
				now := time.Now()
				hbHist.Observe(uint64(now.Sub(lastBeat).Microseconds()))
				lastBeat = now
			}
			if cancel != nil {
				select {
				case <-cancel:
					return core.Result{}, mkFail(KindCanceled,
						fmt.Sprintf("run canceled after %d instructions", n), "")
				default:
				}
			}
			if deadline > 0 && time.Since(start) > deadline {
				return core.Result{}, mkFail(KindTimeout,
					fmt.Sprintf("slice exceeded %v deadline after %d instructions", deadline, n), "")
			}
		}
	}
	res = sim.Snapshot(sl)
	if opts.ResultHook != nil {
		opts.ResultHook(&res)
	}
	if opts.CheckInvariants {
		if err := Check(&res); err != nil {
			return core.Result{}, mkFail(KindInvariant, err.Error(), "")
		}
	}
	return res, nil
}

// Backoff returns the sleep before retry attempt (1-based): full jitter
// over an exponential ceiling — uniform in [0, min(1ms·2^(attempt-1),
// 50ms)]. The ceiling bounds how long a burst of failures can stall a
// worker; the jitter desynchronizes a fleet of workers retrying the
// same flaky resource, which would otherwise thunder the coordinator in
// lockstep waves.
func Backoff(attempt int) time.Duration {
	return time.Duration(rand.Int64N(int64(BackoffCeiling(attempt)) + 1))
}

// BackoffCeiling returns the upper bound Backoff draws from for the
// attempt: 1ms doubling per attempt, capped at 50ms.
func BackoffCeiling(attempt int) time.Duration {
	// 2^6 ms already exceeds the cap; clamping the shift keeps large
	// attempt counts from overflowing the duration to zero or negative.
	if attempt > 6 {
		return 50 * time.Millisecond
	}
	d := time.Millisecond << uint(attempt-1)
	if d > 50*time.Millisecond {
		d = 50 * time.Millisecond
	}
	return d
}

// RunWithRetry runs sl guarded, retrying with a fresh simulator (bounded
// backoff between attempts) up to retries extra times. The first attempt
// uses sim if non-nil (a pooled instance the caller already Reset); every
// retry builds a fresh one via build, because the dominant cause of a
// retryable failure is exactly a corrupted pooled instance.
//
// A KindCanceled failure short-circuits: cancellation is a caller
// decision, not a transient fault, so it is returned immediately with no
// further attempts and no backoff sleep.
//
// Returns the result, the simulator that produced it (safe to keep
// pooling; nil if every attempt failed), the per-attempt failures
// (empty on first-attempt success; the last entry carries the final
// Attempts count), and whether the slice ultimately succeeded.
func RunWithRetry(sim *core.Simulator, build func() *core.Simulator, sl *trace.Slice, opts Options, retries int) (core.Result, *core.Simulator, []SliceFailure, bool) {
	return RunWithRetryFunc(sim, build, retries, func(s *core.Simulator, _ int) (core.Result, *SliceFailure) {
		return RunGuarded(s, sl, opts)
	})
}

// RunWithRetryFunc is RunWithRetry generalized over the guarded attempt
// itself: run(sim, attempt) performs one isolated execution (attempt is
// 1-based). The sweep harness uses it to vary the strategy across
// attempts — a warm-state fork first, a cold full replay on retry, so a
// poisoned snapshot can never fail a slice permanently. Discard/backoff
// semantics are identical to RunWithRetry.
func RunWithRetryFunc(sim *core.Simulator, build func() *core.Simulator, retries int, run func(*core.Simulator, int) (core.Result, *SliceFailure)) (core.Result, *core.Simulator, []SliceFailure, bool) {
	var failures []SliceFailure
	for attempt := 1; ; attempt++ {
		if sim == nil {
			sim = build()
		}
		res, fail := run(sim, attempt)
		if fail == nil {
			return res, sim, failures, true
		}
		fail.Attempts = attempt
		failures = append(failures, *fail)
		sim = nil // discard: possibly corrupted
		if fail.Kind == KindCanceled || attempt > retries {
			return core.Result{}, nil, failures, false
		}
		time.Sleep(Backoff(attempt))
	}
}
