package robust

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"time"

	"exysim/internal/core"
	"exysim/internal/isa"
	"exysim/internal/workload"
)

var tinySpec = workload.SuiteSpec{SlicesPerFamily: 1, InstsPerSlice: 8_000, WarmupFrac: 0.25, Seed: 0xE59}

func TestRunGuardedMatchesRunBitIdentical(t *testing.T) {
	slices := workload.Suite(tinySpec)
	for _, g := range core.Generations() {
		ref := core.RunSlice(g, slices[0])
		got, fail := RunGuarded(core.NewSimulator(g), slices[0], Options{CheckInvariants: true})
		if fail != nil {
			t.Fatalf("%s: healthy slice failed: %v", g.Name, fail)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s: guarded result differs from Run:\n  run:     %+v\n  guarded: %+v", g.Name, ref, got)
		}
	}
}

func TestRunGuardedRecoversPanic(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	opts := Options{StepHook: func(n int, _ *isa.Inst) {
		if n == 100 {
			panic("boom at 100")
		}
	}}
	res, fail := RunGuarded(core.NewSimulator(g), sl, opts)
	if fail == nil {
		t.Fatal("injected panic not reported")
	}
	if fail.Kind != KindPanic {
		t.Fatalf("kind = %s, want %s", fail.Kind, KindPanic)
	}
	if !strings.Contains(fail.Err, "boom at 100") {
		t.Fatalf("error lost the panic value: %q", fail.Err)
	}
	if fail.Stack == "" {
		t.Fatal("panic failure missing stack trace")
	}
	if fail.Gen != g.Name || fail.Slice != sl.Name || fail.ConfigDigest == "" {
		t.Fatalf("failure not fully identified: %+v", fail)
	}
	if !reflect.DeepEqual(res, core.Result{}) {
		t.Fatal("failed run should return a zero result")
	}
}

func TestRunGuardedDeadline(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	opts := Options{
		Deadline:       5 * time.Millisecond,
		HeartbeatEvery: 64,
		StepHook: func(n int, _ *isa.Inst) {
			time.Sleep(200 * time.Microsecond) // 64 insts/heartbeat × 200µs ≫ 5ms
		},
	}
	_, fail := RunGuarded(core.NewSimulator(g), sl, opts)
	if fail == nil || fail.Kind != KindTimeout {
		t.Fatalf("stalled slice should trip the deadline, got %+v", fail)
	}
	if !strings.Contains(fail.Err, "deadline") {
		t.Fatalf("timeout error should name the deadline: %q", fail.Err)
	}
}

func TestRunGuardedInvariantQuarantine(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	opts := Options{
		CheckInvariants: true,
		ResultHook:      func(r *core.Result) { r.IPC = math.NaN() },
	}
	_, fail := RunGuarded(core.NewSimulator(g), sl, opts)
	if fail == nil || fail.Kind != KindInvariant {
		t.Fatalf("NaN IPC should quarantine as invariant violation, got %+v", fail)
	}
}

func TestRunGuardedCancelStopsMidSlice(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	cancel := make(chan struct{})
	stepped := 0
	opts := Options{
		HeartbeatEvery: 64,
		Cancel:         cancel,
		StepHook: func(n int, _ *isa.Inst) {
			stepped = n
			if n == 100 {
				close(cancel)
			}
		},
	}
	res, fail := RunGuarded(core.NewSimulator(g), sl, opts)
	if fail == nil || fail.Kind != KindCanceled {
		t.Fatalf("canceled run should report KindCanceled, got %+v", fail)
	}
	// The slice must stop at the next heartbeat, not run to completion.
	if stepped >= len(sl.Insts)-1 {
		t.Fatalf("cancellation did not stop the slice: stepped through %d of %d insts", stepped+1, len(sl.Insts))
	}
	if !reflect.DeepEqual(res, core.Result{}) {
		t.Fatal("canceled run should return a zero result")
	}
}

func TestRunGuardedNilCancelRuns(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	ref := core.RunSlice(g, sl)
	got, fail := RunGuarded(core.NewSimulator(g), sl, Options{Cancel: nil, CheckInvariants: true})
	if fail != nil {
		t.Fatalf("nil cancel channel must not abort: %v", fail)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("result with nil cancel differs from plain Run")
	}
}

func TestRunWithRetryDoesNotRetryCancel(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	cancel := make(chan struct{})
	close(cancel)
	builds := 0
	build := func() *core.Simulator { builds++; return core.NewSimulator(g) }
	_, sim, fails, ok := RunWithRetry(nil, build, sl, Options{Cancel: cancel, HeartbeatEvery: 64}, 5)
	if ok {
		t.Fatal("canceled run must not report success")
	}
	if sim != nil {
		t.Fatal("canceled run should not return a pool-safe simulator")
	}
	if builds != 1 {
		t.Fatalf("cancellation was retried: %d builds, want 1", builds)
	}
	if len(fails) != 1 || fails[0].Kind != KindCanceled {
		t.Fatalf("want a single canceled record, got %+v", fails)
	}
}

func TestHeartbeatMaskRoundsUp(t *testing.T) {
	for _, tc := range []struct{ in, mask int }{
		{0, DefaultHeartbeat - 1},
		{1, 0},
		{2, 1},
		{3, 3},
		{64, 63},
		{100, 127},
	} {
		o := Options{HeartbeatEvery: tc.in}
		if got := o.heartbeatMask(); got != tc.mask {
			t.Errorf("heartbeatMask(%d) = %d, want %d", tc.in, got, tc.mask)
		}
	}
}

func TestBackoffBounded(t *testing.T) {
	// The ceiling is deterministic: 1ms doubling, capped at 50ms, never
	// shrinking, robust to absurd attempt counts.
	prev := time.Duration(0)
	for attempt := 1; attempt < 100; attempt++ {
		c := BackoffCeiling(attempt)
		if c <= 0 || c > 50*time.Millisecond {
			t.Fatalf("BackoffCeiling(%d) = %v outside (0, 50ms]", attempt, c)
		}
		if c < prev {
			t.Fatalf("BackoffCeiling(%d) = %v shrank from %v", attempt, c, prev)
		}
		prev = c
	}
	if c := BackoffCeiling(1); c != time.Millisecond {
		t.Fatalf("first ceiling = %v, want 1ms", c)
	}
}

func TestBackoffFullJitter(t *testing.T) {
	// Every draw stays within [0, ceiling], and the draws actually vary:
	// a fleet of workers sleeping Backoff(n) must not retry in lockstep.
	for attempt := 1; attempt <= 8; attempt++ {
		c := BackoffCeiling(attempt)
		seen := map[time.Duration]bool{}
		for i := 0; i < 200; i++ {
			d := Backoff(attempt)
			if d < 0 || d > c {
				t.Fatalf("Backoff(%d) = %v outside [0, %v]", attempt, d, c)
			}
			seen[d] = true
		}
		if len(seen) < 2 {
			t.Fatalf("Backoff(%d): 200 draws produced %d distinct values, want jitter", attempt, len(seen))
		}
	}
}

func TestRunWithRetryTransientFault(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	ref := core.RunSlice(g, sl)

	fired := false
	opts := Options{CheckInvariants: true, StepHook: func(n int, _ *isa.Inst) {
		if n == 50 && !fired {
			fired = true
			panic("transient")
		}
	}}
	build := func() *core.Simulator { return core.NewSimulator(g) }
	res, sim, fails, ok := RunWithRetry(core.NewSimulator(g), build, sl, opts, 2)
	if !ok {
		t.Fatalf("transient fault should recover on retry: %+v", fails)
	}
	if sim == nil {
		t.Fatal("successful retry should return a pool-safe simulator")
	}
	if len(fails) != 1 || fails[0].Attempts != 1 {
		t.Fatalf("want one failure record for attempt 1, got %+v", fails)
	}
	if !reflect.DeepEqual(res, ref) {
		t.Fatal("retried result differs from a clean run")
	}
}

func TestRunWithRetryPersistentFaultQuarantines(t *testing.T) {
	g := core.Generations()[0]
	sl := workload.Suite(tinySpec)[0]
	opts := Options{StepHook: func(n int, _ *isa.Inst) {
		if n == 50 {
			panic("persistent")
		}
	}}
	build := func() *core.Simulator { return core.NewSimulator(g) }
	_, sim, fails, ok := RunWithRetry(nil, build, sl, opts, 2)
	if ok {
		t.Fatal("persistent fault must not succeed")
	}
	if sim != nil {
		t.Fatal("no simulator should survive a quarantine")
	}
	if len(fails) != 3 { // initial + 2 retries
		t.Fatalf("attempts = %d, want 3", len(fails))
	}
	if last := fails[len(fails)-1]; last.Attempts != 3 || last.Kind != KindPanic {
		t.Fatalf("final record should carry the attempt count: %+v", last)
	}
}
