package robust

import (
	"math"
	"strings"
	"testing"

	"exysim/internal/core"
	"exysim/internal/workload"
)

// healthyResult simulates one real slice so the checker is exercised
// against genuine counter relationships, not hand-built structs.
func healthyResult(t *testing.T) core.Result {
	t.Helper()
	sl := workload.Suite(tinySpec)[0]
	return core.RunSlice(core.Generations()[0], sl)
}

func TestCheckAcceptsEveryGeneration(t *testing.T) {
	slices := workload.Suite(tinySpec)
	for _, g := range core.Generations() {
		for _, sl := range slices {
			r := core.RunSlice(g, sl)
			if err := Check(&r); err != nil {
				t.Errorf("%s/%s: healthy result rejected: %v", g.Name, sl.Name, err)
			}
		}
	}
}

func TestCheckRejectsCorruption(t *testing.T) {
	cases := map[string]func(r *core.Result){
		"nan ipc":          func(r *core.Result) { r.IPC = math.NaN() },
		"inf ipc":          func(r *core.Result) { r.IPC = math.Inf(1) },
		"ipc too high":     func(r *core.Result) { r.IPC = MaxIPC + 1 },
		"ipc inconsistent": func(r *core.Result) { r.IPC *= 2 },
		"negative mpki":    func(r *core.Result) { r.MPKI = -0.5 },
		"mpki over 1000":   func(r *core.Result) { r.MPKI = 1500 },
		"negative loadlat": func(r *core.Result) { r.AvgLoadLat = -1 },
		"huge loadlat":     func(r *core.Result) { r.AvgLoadLat = MaxLoadLat * 2 },
		"nan epki":         func(r *core.Result) { r.FetchEPKI = math.NaN() },
		"nan power":        func(r *core.Result) { r.PowerBreakdown["shp"] = math.NaN() },
		"mispredict overflow": func(r *core.Result) {
			r.Front.Mispredicts = r.Front.Branches + 1
		},
		"taken over branches": func(r *core.Result) {
			r.Front.TakenBranches = r.Front.Branches + 1
		},
		"branches over insts": func(r *core.Result) {
			r.Front.Branches = r.Front.Insts + 1
		},
		"l1d hits overflow": func(r *core.Result) {
			r.Mem.L1DHits = r.Mem.Loads + r.Mem.Stores + 1
		},
		"retire wider than core": func(r *core.Result) {
			r.Insts = uint64(MaxIPC)*r.Cycles + 1
			r.IPC = float64(r.Insts) / float64(r.Cycles)
		},
		"no work": func(r *core.Result) { *r = core.Result{} },
	}
	for name, corrupt := range cases {
		r := healthyResult(t)
		corrupt(&r)
		if err := Check(&r); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func TestCheckReportsEveryViolation(t *testing.T) {
	r := healthyResult(t)
	r.IPC = math.NaN()
	r.AvgLoadLat = -1
	err := Check(&r)
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "IPC") || !strings.Contains(err.Error(), "load latency") {
		t.Fatalf("error should list both violations: %v", err)
	}
}
