// Command exytrace manages workload traces: it materializes the
// synthetic suite to disk in the compact binary format, inspects trace
// files, and runs SimPoint phase analysis (§II) over a trace.
//
// Usage:
//
//	exytrace gen --out=DIR [--spec=tiny|quick|standard]   # write the suite
//	exytrace info FILE...                                 # summarize traces
//	exytrace simpoint FILE [--interval=N] [--maxk=K]      # phase analysis
//	exytrace simpoint --slice=web/0 [--spec=quick]        # ... of a synthetic slice
//	exytrace convert CHAMPSIM.trace[.gz] --out=FILE.exyt  # import a ChampSim trace
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"exysim/internal/simpoint"
	"exysim/internal/trace"
	"exysim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "simpoint":
		cmdSimpoint(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: exytrace <gen|info|simpoint|convert> [flags]")
}

func specByName(name string) workload.SuiteSpec {
	switch name {
	case "tiny":
		return workload.TinySpec
	case "quick", "":
		return workload.QuickSpec
	case "standard":
		return workload.StandardSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown spec %q\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "traces", "output directory")
	spec := fs.String("spec", "quick", "suite size (tiny|quick|standard)")
	_ = fs.Parse(args)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	slices := workload.Suite(specByName(*spec))
	var bytes int64
	for _, sl := range slices {
		name := strings.ReplaceAll(sl.Name, "/", "_") + ".exyt"
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, sl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(path)
		bytes += st.Size()
	}
	fmt.Printf("wrote %d traces to %s (%.1f MB, %.2f bytes/inst)\n",
		len(slices), *out, float64(bytes)/1e6,
		float64(bytes)/float64(len(slices)*slices[0].Len()))
}

func cmdInfo(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "exytrace info FILE...")
		os.Exit(2)
	}
	// A corrupt or truncated file must not abort the whole listing: each
	// failure is reported (with the decoder's record/byte-offset detail)
	// and the command exits non-zero after covering every file.
	failed := false
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exytrace:", err)
			failed = true
			continue
		}
		sl, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "exytrace: %s: %v\n", path, err)
			failed = true
			continue
		}
		st := sl.Summarize()
		fmt.Printf("%s: %s (suite %s)\n", path, sl.Name, sl.Suite)
		fmt.Printf("  %d insts (%d warmup), %d static PCs, %d data lines\n",
			st.Insts, sl.Warmup, st.UniquePCs, st.UniqueLines)
		fmt.Printf("  branches %d (%.1f%%): cond taken/NT %d/%d, indirect %d, returns %d\n",
			st.Branches, st.BranchRate()*100, st.CondTaken, st.CondNotTkn, st.Indirects, st.Returns)
		fmt.Printf("  loads %d, stores %d\n", st.Loads, st.Stores)
		if err := sl.Validate(); err != nil {
			fmt.Printf("  VALIDATION FAILED: %v\n", err)
			failed = true
		} else {
			fmt.Printf("  control flow validated\n")
		}
	}
	if failed {
		os.Exit(1)
	}
}

func cmdSimpoint(args []string) {
	fs := flag.NewFlagSet("simpoint", flag.ExitOnError)
	sliceName := fs.String("slice", "", "synthetic slice (family/idx) instead of a file")
	spec := fs.String("spec", "quick", "suite sizing for --slice")
	interval := fs.Int("interval", 10_000, "interval length in instructions")
	maxk := fs.Int("maxk", 8, "maximum phase count")
	_ = fs.Parse(args)

	var sl *trace.Slice
	var err error
	switch {
	case *sliceName != "":
		sl, err = workload.ByName(*sliceName, specByName(*spec))
	case fs.NArg() == 1:
		var f *os.File
		if f, err = os.Open(fs.Arg(0)); err == nil {
			sl, err = trace.Read(f)
			f.Close()
		}
	default:
		fmt.Fprintln(os.Stderr, "exytrace simpoint FILE | --slice=family/idx")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	cfg := simpoint.DefaultConfig()
	cfg.IntervalInsts = *interval
	cfg.MaxK = *maxk
	res, err := simpoint.Analyze(sl, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d intervals of %d insts -> %d phases\n", sl.Name, res.Intervals, *interval, res.K)
	fmt.Printf("assignment: %v\n", res.Assignment)
	for _, p := range res.Picks {
		fmt.Printf("  phase %d: representative interval %d, weight %.2f\n", p.Cluster, p.Interval, p.Weight)
	}
}

// cmdConvert imports a ChampSim trace into the native format.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("out", "", "output .exyt path (default: input + .exyt)")
	name := fs.String("name", "", "slice name (default: file base name)")
	maxInsts := fs.Int("max", 0, "instruction cap (0 = all)")
	warmup := fs.Int("warmup", 0, "warmup instructions (default 10%)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "exytrace convert CHAMPSIM.trace[.gz] [--out=FILE]")
		os.Exit(2)
	}
	in := fs.Arg(0)
	if *name == "" {
		*name = "imported/" + filepath.Base(in)
	}
	if *out == "" {
		*out = in + ".exyt"
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	sl, err := trace.ReadChampSim(f, *name, "imported", *maxInsts, *warmup)
	f.Close()
	if err != nil {
		fatal(err)
	}
	o, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(o, sl); err != nil {
		fatal(err)
	}
	if err := o.Close(); err != nil {
		fatal(err)
	}
	if sl.WarmupClamped {
		fmt.Fprintf(os.Stderr, "exytrace: warning: warmup %d covers the whole %d-inst trace; clamped to %d\n",
			sl.RequestedWarmup, len(sl.Insts), sl.Warmup)
	}
	st := sl.Summarize()
	fmt.Printf("converted %d insts (%d branches, %d loads, %d stores) -> %s\n",
		st.Insts, st.Branches, st.Loads, st.Stores, *out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exytrace:", err)
	os.Exit(1)
}
