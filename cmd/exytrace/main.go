// Command exytrace manages workload traces: it materializes the
// synthetic suite to disk in the compact binary format, inspects trace
// files, and runs SimPoint phase analysis (§II) over a trace.
//
// Usage:
//
//	exytrace gen --out=DIR [--spec=tiny|quick|standard]   # write the suite
//	exytrace info FILE...                                 # summarize traces
//	exytrace simpoint FILE [--interval=N] [--maxk=K]      # phase analysis
//	exytrace simpoint --slice=web/0 [--spec=quick]        # ... of a synthetic slice
//	exytrace convert CHAMPSIM.trace[.gz] --out=FILE.exyt  # import a ChampSim trace
//	exytrace ingest CHAMPSIM.trace[.gz] --store=DIR       # SimPoint-slice into a store
//	exytrace ingest FILE --upload=http://host:8080        # ... or into an exyserve
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"exysim/internal/simpoint"
	"exysim/internal/trace"
	"exysim/internal/tracestore"
	"exysim/internal/workload"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "simpoint":
		cmdSimpoint(os.Args[2:])
	case "convert":
		cmdConvert(os.Args[2:])
	case "ingest":
		cmdIngest(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: exytrace <gen|info|simpoint|convert|ingest> [flags]")
}

func specByName(name string) workload.SuiteSpec {
	switch name {
	case "tiny":
		return workload.TinySpec
	case "quick", "":
		return workload.QuickSpec
	case "standard":
		return workload.StandardSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown spec %q\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	out := fs.String("out", "traces", "output directory")
	spec := fs.String("spec", "quick", "suite size (tiny|quick|standard)")
	_ = fs.Parse(args)
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	slices := workload.Suite(specByName(*spec))
	var bytes int64
	for _, sl := range slices {
		name := strings.ReplaceAll(sl.Name, "/", "_") + ".exyt"
		path := filepath.Join(*out, name)
		f, err := os.Create(path)
		if err != nil {
			fatal(err)
		}
		if err := trace.Write(f, sl); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		st, _ := os.Stat(path)
		bytes += st.Size()
	}
	fmt.Printf("wrote %d traces to %s (%.1f MB, %.2f bytes/inst)\n",
		len(slices), *out, float64(bytes)/1e6,
		float64(bytes)/float64(len(slices)*slices[0].Len()))
}

func cmdInfo(args []string) {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "exytrace info FILE...")
		os.Exit(2)
	}
	// A corrupt or truncated file must not abort the whole listing: each
	// failure is reported (with the decoder's record/byte-offset detail)
	// and the command exits non-zero after covering every file.
	failed := false
	for _, path := range args {
		f, err := os.Open(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exytrace:", err)
			failed = true
			continue
		}
		sl, err := trace.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "exytrace: %s: %v\n", path, err)
			failed = true
			continue
		}
		st := sl.Summarize()
		fmt.Printf("%s: %s (suite %s)\n", path, sl.Name, sl.Suite)
		fmt.Printf("  %d insts (%d warmup), %d static PCs, %d data lines\n",
			st.Insts, sl.Warmup, st.UniquePCs, st.UniqueLines)
		fmt.Printf("  branches %d (%.1f%%): cond taken/NT %d/%d, indirect %d, returns %d\n",
			st.Branches, st.BranchRate()*100, st.CondTaken, st.CondNotTkn, st.Indirects, st.Returns)
		fmt.Printf("  loads %d, stores %d\n", st.Loads, st.Stores)
		if err := sl.Validate(); err != nil {
			fmt.Printf("  VALIDATION FAILED: %v\n", err)
			failed = true
		} else {
			fmt.Printf("  control flow validated\n")
		}
	}
	if failed {
		os.Exit(1)
	}
}

func cmdSimpoint(args []string) {
	fs := flag.NewFlagSet("simpoint", flag.ExitOnError)
	sliceName := fs.String("slice", "", "synthetic slice (family/idx) instead of a file")
	spec := fs.String("spec", "quick", "suite sizing for --slice")
	interval := fs.Int("interval", 10_000, "interval length in instructions")
	maxk := fs.Int("maxk", 8, "maximum phase count")
	_ = fs.Parse(args)

	var sl *trace.Slice
	var err error
	switch {
	case *sliceName != "":
		sl, err = workload.ByName(*sliceName, specByName(*spec))
	case fs.NArg() == 1:
		var f *os.File
		if f, err = os.Open(fs.Arg(0)); err == nil {
			sl, err = trace.Read(f)
			f.Close()
		}
	default:
		fmt.Fprintln(os.Stderr, "exytrace simpoint FILE | --slice=family/idx")
		os.Exit(2)
	}
	if err != nil {
		fatal(err)
	}

	cfg := simpoint.DefaultConfig()
	cfg.IntervalInsts = *interval
	cfg.MaxK = *maxk
	res, err := simpoint.Analyze(sl, cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d intervals of %d insts -> %d phases\n", sl.Name, res.Intervals, *interval, res.K)
	fmt.Printf("assignment: %v\n", res.Assignment)
	for _, p := range res.Picks {
		fmt.Printf("  phase %d: representative interval %d, weight %.2f\n", p.Cluster, p.Interval, p.Weight)
	}
}

// cmdConvert imports a ChampSim trace into the native format.
func cmdConvert(args []string) {
	fs := flag.NewFlagSet("convert", flag.ExitOnError)
	out := fs.String("out", "", "output .exyt path (default: input + .exyt)")
	name := fs.String("name", "", "slice name (default: file base name)")
	maxInsts := fs.Int("max", 0, "instruction cap (0 = all)")
	warmup := fs.Int("warmup", 0, "warmup instructions (default 10%)")
	_ = fs.Parse(args)
	if fs.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "exytrace convert CHAMPSIM.trace[.gz] [--out=FILE]")
		os.Exit(2)
	}
	in := fs.Arg(0)
	if *name == "" {
		*name = "imported/" + filepath.Base(in)
	}
	if *out == "" {
		*out = in + ".exyt"
	}
	f, err := os.Open(in)
	if err != nil {
		fatal(err)
	}
	sl, err := trace.ReadChampSim(f, *name, "imported", *maxInsts, *warmup)
	f.Close()
	if err != nil {
		fatal(err)
	}
	o, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	if err := trace.Write(o, sl); err != nil {
		fatal(err)
	}
	if err := o.Close(); err != nil {
		fatal(err)
	}
	if sl.WarmupClamped {
		fmt.Fprintf(os.Stderr, "exytrace: warning: warmup %d covers the whole %d-inst trace; clamped to %d\n",
			sl.RequestedWarmup, len(sl.Insts), sl.Warmup)
	}
	st := sl.Summarize()
	fmt.Printf("converted %d insts (%d branches, %d loads, %d stores) -> %s\n",
		st.Insts, st.Branches, st.Loads, st.Stores, *out)
}

// cmdIngest runs the full real-trace pipeline over one ChampSim file:
// streaming SimPoint analysis, weighted slice extraction, and storage
// under the population's content address — either in a local store
// (--store) or a running exyserve (--upload), whose response is the
// same Meta document. The printed id is what population jobs reference
// as {"trace": ID}.
func cmdIngest(args []string) {
	fs := flag.NewFlagSet("ingest", flag.ExitOnError)
	store := fs.String("store", "", "local trace store directory")
	upload := fs.String("upload", "", "exyserve base URL to upload to instead (e.g. http://localhost:8080)")
	name := fs.String("name", "", "population label (default: file base name)")
	suite := fs.String("suite", "", "suite grouping (default \"trace\")")
	interval := fs.Int("interval", 0, "SimPoint interval length in instructions (0 = default)")
	maxk := fs.Int("maxk", 0, "SimPoint cluster-count cap (0 = default)")
	maxInsts := fs.Int("max", 0, "analyze at most this many instructions (0 = all)")
	_ = fs.Parse(args)
	// Accept "ingest FILE --store=DIR" as documented: Go's flag parser
	// stops at the first positional, so re-parse whatever followed it.
	var in string
	if rest := fs.Args(); len(rest) > 0 {
		in = rest[0]
		_ = fs.Parse(rest[1:])
	}
	if in == "" || fs.NArg() != 0 || (*store == "") == (*upload == "") {
		fmt.Fprintln(os.Stderr, "exytrace ingest CHAMPSIM.trace[.gz] --store=DIR | --upload=URL")
		os.Exit(2)
	}
	if *name == "" {
		*name = filepath.Base(in)
	}

	if *upload != "" {
		f, err := os.Open(in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		q := url.Values{"name": {*name}}
		if *suite != "" {
			q.Set("suite", *suite)
		}
		if *interval > 0 {
			q.Set("interval", strconv.Itoa(*interval))
		}
		if *maxk > 0 {
			q.Set("maxk", strconv.Itoa(*maxk))
		}
		if *maxInsts > 0 {
			q.Set("max", strconv.Itoa(*maxInsts))
		}
		resp, err := http.Post(strings.TrimSuffix(*upload, "/")+"/v1/traces?"+q.Encode(),
			"application/octet-stream", f)
		if err != nil {
			fatal(err)
		}
		defer resp.Body.Close()
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
			fatal(fmt.Errorf("upload: %s: %s", resp.Status, body))
		}
		var doc struct {
			Meta  tracestore.Meta `json:"meta"`
			Dedup bool            `json:"dedup"`
		}
		if err := json.Unmarshal(body, &doc); err != nil {
			fatal(fmt.Errorf("upload: bad response: %w", err))
		}
		printMeta(doc.Meta, doc.Dedup)
		return
	}

	st, err := tracestore.Open(*store)
	if err != nil {
		fatal(err)
	}
	opts := tracestore.IngestOptions{
		Name: *name, Suite: *suite, MaxInsts: *maxInsts,
		SimPoint: simpoint.DefaultConfig(),
	}
	if *interval > 0 {
		opts.SimPoint.IntervalInsts = *interval
	}
	if *maxk > 0 {
		opts.SimPoint.MaxK = *maxk
	}
	pop, dedup, err := st.IngestFile(in, opts)
	if err != nil {
		fatal(err)
	}
	printMeta(pop.Meta, dedup)
}

func printMeta(m tracestore.Meta, dedup bool) {
	verb := "ingested"
	if dedup {
		verb = "already ingested"
	}
	fmt.Printf("%s %s: %d insts -> %d intervals, %d phases, %d weighted slices\n",
		verb, m.Name, m.TotalInsts, m.Intervals, m.K, len(m.Slices))
	for _, sm := range m.Slices {
		fmt.Printf("  %s: cluster %d, weight %.3f, %d insts (%d warmup)\n",
			sm.Name, sm.Cluster, sm.Weight, sm.Insts, sm.Warmup)
	}
	fmt.Printf("population id: %s\n", m.ID)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exytrace:", err)
	os.Exit(1)
}
