package main

import (
	"strings"
	"testing"
)

func report(pop *PopResult, gens ...GenResult) *Report {
	return &Report{Results: gens, Population: pop}
}

func gen(name string, ips float64) GenResult {
	return GenResult{Gen: name, InstsPerSec: ips}
}

func TestCompareGatesOnCommonEntries(t *testing.T) {
	base := report(nil, gen("M1", 100), gen("M2", 100))
	cand := report(nil, gen("M1", 95), gen("M2", 90))
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("within tolerance should pass: %v", out.lines)
	}
	out = compareReports(base, cand, 0.96)
	if !out.fail {
		t.Fatal("M2 at 0.90x must fail a 0.96 tolerance")
	}
}

func TestCompareReportsAddedEntriesWithoutGating(t *testing.T) {
	// Baseline predates generation M6: its absence must be reported, not
	// fail the gate — the common entries still gate normally.
	base := report(nil, gen("M1", 100))
	cand := report(nil, gen("M1", 99), gen("M6", 1))
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("new entry must not fail the gate: %v", out.lines)
	}
	if len(out.added) != 1 || out.added[0] != "M6" {
		t.Fatalf("added = %v, want [M6]", out.added)
	}
}

func TestCompareReportsRemovedEntriesWithoutGating(t *testing.T) {
	// A generation retired since the baseline: report it, gate the rest.
	base := report(nil, gen("M1", 100), gen("M9", 500))
	cand := report(nil, gen("M1", 99))
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("removed entry must not fail the gate: %v", out.lines)
	}
	if len(out.removed) != 1 || out.removed[0] != "M9" {
		t.Fatalf("removed = %v, want [M9]", out.removed)
	}
	joined := strings.Join(out.lines, "\n")
	if !strings.Contains(joined, "removed") {
		t.Fatalf("table should mark the removed row:\n%s", joined)
	}
}

func TestComparePopulationEntry(t *testing.T) {
	pop := func(ips float64) *PopResult {
		return &PopResult{SlicesPerFamily: 2, InstsPerSlice: 1000, InstsPerSec: ips}
	}

	// Both sides: gated.
	out := compareReports(report(pop(100)), report(pop(50)), 0.7)
	if !out.fail {
		t.Fatal("population regression must gate when both sides have it")
	}

	// Baseline predates the population benchmark: new, not gated.
	out = compareReports(report(nil), report(pop(50)), 0.7)
	if out.fail || len(out.added) != 1 || out.added[0] != "pop" {
		t.Fatalf("population-only-in-candidate should report added: fail=%v added=%v", out.fail, out.added)
	}

	// Candidate dropped it: removed, not gated.
	out = compareReports(report(pop(100)), report(nil), 0.7)
	if out.fail || len(out.removed) != 1 || out.removed[0] != "pop" {
		t.Fatalf("population-only-in-base should report removed: fail=%v removed=%v", out.fail, out.removed)
	}

	// Different spec: skipped, not compared.
	other := &PopResult{SlicesPerFamily: 9, InstsPerSlice: 9, InstsPerSec: 1}
	out = compareReports(report(other), report(pop(50)), 0.7)
	if out.fail {
		t.Fatal("mismatched population specs must not gate")
	}
}

func TestComparePopulationColdEntry(t *testing.T) {
	pop := func(ips float64) *PopResult {
		return &PopResult{SlicesPerFamily: 2, InstsPerSlice: 1000, InstsPerSec: ips}
	}

	// Baseline predates warm snapshots: its single `population` entry
	// gates against the new warm entry (the whole point of the warm path
	// is to beat the old number), while the new cold entry is reported as
	// added until the baseline is refreshed.
	base := report(pop(100))
	cand := report(pop(250))
	cand.PopulationCold = pop(80)
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("cold entry absent from baseline must not gate: %v", out.lines)
	}
	if len(out.added) != 1 || out.added[0] != "cold" {
		t.Fatalf("added = %v, want [cold]", out.added)
	}

	// A refreshed baseline carries both entries; each gates separately.
	base.PopulationCold = pop(100)
	out = compareReports(base, cand, 0.9)
	if !out.fail {
		t.Fatal("cold at 0.80x must fail a 0.9 tolerance even when warm improved")
	}
}

func TestCompareDamagedBaselineSkipped(t *testing.T) {
	// A zero-throughput baseline row is a damaged file, not a regression;
	// gating on it would divide by zero.
	base := report(nil, gen("M1", 0), gen("M2", 100))
	cand := report(nil, gen("M1", 50), gen("M2", 99))
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("damaged baseline row must be skipped: %v", out.lines)
	}
	joined := strings.Join(out.lines, "\n")
	if !strings.Contains(joined, "skip") {
		t.Fatalf("damaged row should be marked skipped:\n%s", joined)
	}
	if compareReports(report(&PopResult{SlicesPerFamily: 2, InstsPerSlice: 1000}),
		report(&PopResult{SlicesPerFamily: 2, InstsPerSlice: 1000, InstsPerSec: 5}), 0.7).fail {
		t.Fatal("damaged population baseline must be skipped too")
	}
}

func TestCompareIdenticalReportsPass(t *testing.T) {
	r := report(&PopResult{SlicesPerFamily: 2, InstsPerSlice: 1000, InstsPerSec: 7},
		gen("M1", 100), gen("M2", 200))
	out := compareReports(r, r, 0.99)
	if out.fail || len(out.added) != 0 || len(out.removed) != 0 {
		t.Fatalf("identical reports must pass cleanly: %+v", out)
	}
}

func TestCollectEnvPopulated(t *testing.T) {
	e := collectEnv()
	if e.GoVersion == "" || e.GoMaxProcs <= 0 || e.NumCPU <= 0 || e.OSArch == "" {
		t.Fatalf("env incomplete: %+v", e)
	}
	if !strings.Contains(e.String(), e.GoVersion) {
		t.Fatalf("String() missing go version: %s", e.String())
	}
}

func TestCompareEnvMismatchReportedNotGated(t *testing.T) {
	base := report(nil, gen("M1", 100))
	base.Env = &EnvInfo{GoVersion: "go1.22.0", GoMaxProcs: 4, NumCPU: 4, OSArch: "linux/amd64", CPU: "old box"}
	cand := report(nil, gen("M1", 100))
	cand.Env = collectEnv()
	out := compareReports(base, cand, 0.7)
	if out.fail {
		t.Fatalf("env mismatch must not fail the gate: %v", out.lines)
	}
	if len(out.envNotes) == 0 {
		t.Fatal("env mismatch not reported")
	}
	joined := strings.Join(out.envNotes, "\n")
	if !strings.Contains(joined, "old box") {
		t.Fatalf("notes should name both environments:\n%s", joined)
	}

	// Identical environments (or a baseline without one) stay silent.
	cand.Env = base.Env
	if out := compareReports(base, cand, 0.7); len(out.envNotes) != 0 {
		t.Fatalf("identical envs reported: %v", out.envNotes)
	}
	base.Env = nil
	if out := compareReports(base, cand, 0.7); len(out.envNotes) != 0 {
		t.Fatalf("missing baseline env reported: %v", out.envNotes)
	}
}
