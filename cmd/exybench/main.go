// Command exybench is the performance gate for the simulator's hot
// path. It measures raw simulation throughput (instructions per
// wall-clock second) for every generation on the same workload slice
// the Go benchmarks use, writes the results as machine-readable JSON,
// and compares two such reports to flag regressions.
//
// Usage:
//
//	exybench run [--out=BENCH_throughput.json] [--reps=5] [--smoke]
//	exybench compare --base=BENCH_throughput.json [--new=FILE] [--tolerance=0.7]
//
// `run` records the best (minimum time) of --reps measurement batches
// per generation; min-of-N is robust against scheduler noise, which on
// shared machines dwarfs the true variance of this workload. --smoke
// runs a single tiny batch per generation — enough to prove the
// pipeline executes and the step loop does not allocate, cheap enough
// for the tier-1 gate.
//
// `compare` re-measures the current build when --new is omitted, and
// exits nonzero if any generation's throughput falls below
// tolerance × baseline.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"sync"

	"exysim/internal/branch"
	"exysim/internal/core"
	"exysim/internal/experiments"
	"exysim/internal/fabric"
	"exysim/internal/simpoint"
	"exysim/internal/trace"
	"exysim/internal/tracestore"
	"exysim/internal/workload"
)

// benchSpec mirrors the population spec in bench_test.go so JSON
// baselines and `go test -bench` numbers are directly comparable.
var benchSpec = workload.SuiteSpec{SlicesPerFamily: 2, InstsPerSlice: 40_000, WarmupFrac: 0.25, Seed: 0xE59}

// popSmokeSpec is the tiny population the tier-1 smoke gate runs: large
// enough to exercise the worker pools and simulator recycling, small
// enough to finish in a couple of seconds.
var popSmokeSpec = workload.SuiteSpec{SlicesPerFamily: 1, InstsPerSlice: 8_000, WarmupFrac: 0.25, Seed: 0xE59}

const benchSlice = "specint/0"

// GenResult is one generation's throughput measurement.
type GenResult struct {
	Gen         string  `json:"gen"`
	NsPerOp     float64 `json:"ns_per_op"`
	InstsPerSec float64 `json:"insts_per_sec"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	Iterations  int     `json:"iterations"`
	Reps        int     `json:"reps"`
}

// PopResult is a population-scale measurement: one experiments.Run
// (every generation × the whole benchSpec suite, fanned across CPUs with
// per-worker simulator pools), best of N runs. Unlike the per-generation
// rows, which time the single-threaded step loop, this times the
// orchestration the figure CLIs actually execute — suite generation,
// worker fan-out, and simulator recycling included. Reports carry two
// such entries: `population` is the warm steady-state (sweeps fork each
// (generation, slice) pair from a cached warm-state snapshot and replay
// only the measured region — the regime exyserve and repeated-sweep
// campaigns run in), `population_cold` re-pays suite generation and
// warmup every sweep. InstsPerSec divides *measured* instructions by
// wall time in both, so the two entries are directly comparable.
type PopResult struct {
	SlicesPerFamily int     `json:"slices_per_family"`
	InstsPerSlice   int     `json:"insts_per_slice"`
	Slices          int     `json:"slices"`
	TotalInsts      uint64  `json:"total_insts"`
	WallSeconds     float64 `json:"wall_seconds"`
	InstsPerSec     float64 `json:"insts_per_sec"`
	Reps            int     `json:"reps"`
	// Workers is the fabric worker count for population_fabric entries;
	// 0 for the single-process entries.
	Workers int `json:"workers,omitempty"`
}

// EnvInfo is the provenance block embedded in every report: enough to
// tell whether two BENCH_throughput.json files were measured on
// comparable machines. compare never gates on it — throughput deltas
// across different hardware are information, not regressions — but it
// prints a notice when the environments differ.
type EnvInfo struct {
	GoVersion  string `json:"go_version"`
	GoMaxProcs int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	OSArch     string `json:"os_arch"`
	// CPU is the host processor description (Linux /proc/cpuinfo);
	// empty where unavailable.
	CPU string `json:"cpu,omitempty"`
}

func (e *EnvInfo) String() string {
	s := fmt.Sprintf("%s %s, %d cpus (GOMAXPROCS %d)", e.GoVersion, e.OSArch, e.NumCPU, e.GoMaxProcs)
	if e.CPU != "" {
		s += ", " + e.CPU
	}
	return s
}

func collectEnv() *EnvInfo {
	return &EnvInfo{
		GoVersion:  runtime.Version(),
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		OSArch:     runtime.GOOS + "/" + runtime.GOARCH,
		CPU:        cpuModel(),
	}
}

// cpuModel best-effort reads the processor description from
// /proc/cpuinfo; returns "" on non-Linux hosts.
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, val, ok := strings.Cut(line, ":"); ok {
			switch strings.TrimSpace(name) {
			case "model name", "Processor", "cpu model":
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// Report is the BENCH_throughput.json schema. GoVersion/NumCPU predate
// the Env block and stay for older tooling; Env is the full provenance.
type Report struct {
	Slice      string      `json:"slice"`
	Insts      uint64      `json:"insts_per_op"`
	GoVersion  string      `json:"go_version"`
	NumCPU     int         `json:"num_cpu"`
	Env        *EnvInfo    `json:"env,omitempty"`
	Results    []GenResult `json:"results"`
	Population *PopResult  `json:"population,omitempty"`
	// PopulationCold is the cold-sweep counterpart of Population; absent
	// in baselines that predate warm-state snapshots.
	PopulationCold *PopResult `json:"population_cold,omitempty"`
	// PopulationFabric is the distributed-fabric serving regime: one
	// in-process coordinator + 4 workers, measured at the shard-cache
	// steady state repeated sweeps converge to; absent in baselines
	// that predate the fabric.
	PopulationFabric *PopResult `json:"population_fabric,omitempty"`
	// TracePopulation times the real-trace pipeline end to end —
	// streaming ChampSim ingest with SimPoint slicing into a fresh
	// content-addressed store, then a weighted sweep of the ingested
	// population across every generation. InstsPerSlice records the
	// SimPoint detail-interval length (the spec fields comparePop keys
	// on); absent in baselines that predate trace ingest.
	TracePopulation *PopResult `json:"trace_population,omitempty"`
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "run":
		cmdRun(os.Args[2:])
	case "compare":
		cmdCompare(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: exybench run|compare [flags]")
	os.Exit(2)
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	out := fs.String("out", "BENCH_throughput.json", "output JSON path (empty: stdout table only)")
	reps := fs.Int("reps", 5, "measurement batches per generation; the minimum time is reported")
	smoke := fs.Bool("smoke", false, "single tiny batch per generation (tier-1 gate mode)")
	fs.Parse(args)

	rep := measure(*reps, *smoke)
	printTable(rep)
	if *out != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			fatal(err)
		}
		data = append(data, '\n')
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}
}

func cmdCompare(args []string) {
	fs := flag.NewFlagSet("compare", flag.ExitOnError)
	basePath := fs.String("base", "BENCH_throughput.json", "baseline JSON")
	newPath := fs.String("new", "", "candidate JSON (empty: measure the current build)")
	// Even min-of-5 batches swing ~20% on shared machines, so the
	// default margin is generous; it still catches the >1.5x class of
	// regression this gate exists for.
	tol := fs.Float64("tolerance", 0.70, "fail if any generation drops below tolerance x baseline")
	reps := fs.Int("reps", 5, "measurement batches when re-measuring")
	fs.Parse(args)

	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	var cand *Report
	if *newPath != "" {
		if cand, err = load(*newPath); err != nil {
			fatal(err)
		}
	} else {
		cand = measure(*reps, false)
	}

	out := compareReports(base, cand, *tol)
	for _, line := range out.lines {
		fmt.Println(line)
	}
	for _, note := range out.envNotes {
		fmt.Println(note)
	}
	if len(out.added) > 0 {
		fmt.Printf("entries only in the new run (reported, not gated): %s\n", strings.Join(out.added, ", "))
	}
	if len(out.removed) > 0 {
		fmt.Printf("entries only in the baseline (reported, not gated): %s\n", strings.Join(out.removed, ", "))
	}
	if out.fail {
		fmt.Fprintf(os.Stderr, "exybench: throughput regression beyond tolerance %.2f\n", *tol)
		os.Exit(1)
	}
}

// compareOutcome is the result of comparing a candidate report against a
// baseline: formatted table lines, the entries present in only one of
// the two reports, and whether any shared entry regressed past
// tolerance.
type compareOutcome struct {
	lines   []string
	added   []string // in candidate, not in baseline
	removed []string // in baseline, not in candidate
	// envNotes flags measurement-environment mismatches between the two
	// reports; informational only, never part of the gate math.
	envNotes []string
	fail     bool
}

// compareReports gates only on entries present in both reports. Entries
// that appear on just one side (a generation added or retired since the
// baseline was committed, a baseline predating the population benchmark)
// are reported as added/removed instead of failing the comparison — a
// stale baseline should prompt a `make bench` refresh, not block the
// gate on unrelated work.
func compareReports(base, cand *Report, tol float64) compareOutcome {
	var out compareOutcome
	if base.Env != nil && cand.Env != nil && *base.Env != *cand.Env {
		out.envNotes = append(out.envNotes,
			"environment differs between reports (ratios reflect hardware as well as code):",
			"  base: "+base.Env.String(),
			"  new:  "+cand.Env.String())
	}
	baseBy := map[string]GenResult{}
	for _, r := range base.Results {
		baseBy[r.Gen] = r
	}
	candSeen := map[string]bool{}
	out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14s  %7s", "gen", "base insts/s", "new insts/s", "ratio"))
	for _, n := range cand.Results {
		candSeen[n.Gen] = true
		b, ok := baseBy[n.Gen]
		if !ok {
			out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14.0f  %7s", n.Gen, "-", n.InstsPerSec, "new"))
			out.added = append(out.added, n.Gen)
			continue
		}
		if b.InstsPerSec <= 0 {
			// A zero/negative baseline can only come from a damaged file;
			// gating on it would divide by zero. Report and move on.
			out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14.0f  %7s", n.Gen, "bad", n.InstsPerSec, "skip"))
			continue
		}
		ratio := n.InstsPerSec / b.InstsPerSec
		mark := ""
		if ratio < tol {
			mark = "  REGRESSION"
			out.fail = true
		}
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14.0f  %14.0f  %6.2fx%s", n.Gen, b.InstsPerSec, n.InstsPerSec, ratio, mark))
	}
	for _, b := range base.Results {
		if !candSeen[b.Gen] {
			out.lines = append(out.lines, fmt.Sprintf("%-4s  %14.0f  %14s  %7s", b.Gen, b.InstsPerSec, "-", "removed"))
			out.removed = append(out.removed, b.Gen)
		}
	}
	out.comparePop("pop", base.Population, cand.Population, tol)
	out.comparePop("cold", base.PopulationCold, cand.PopulationCold, tol)
	out.comparePop("fab", base.PopulationFabric, cand.PopulationFabric, tol)
	out.comparePop("trace", base.TracePopulation, cand.TracePopulation, tol)
	return out
}

// comparePop gates one population entry (warm or cold) with the same
// present-in-both rule the per-generation rows use.
func (out *compareOutcome) comparePop(label string, b, n *PopResult, tol float64) {
	switch {
	case n == nil && b == nil:
	case n == nil:
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14.0f  %14s  %7s", label, b.InstsPerSec, "-", "removed"))
		out.removed = append(out.removed, label)
	case b == nil:
		// Baseline predates this population entry: report, don't gate.
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14.0f  %7s", label, "-", n.InstsPerSec, "new"))
		out.added = append(out.added, label)
	case b.SlicesPerFamily != n.SlicesPerFamily || b.InstsPerSlice != n.InstsPerSlice:
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14.0f  %7s", label, "spec?", n.InstsPerSec, "skip"))
	case b.InstsPerSec <= 0:
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14s  %14.0f  %7s", label, "bad", n.InstsPerSec, "skip"))
	default:
		ratio := n.InstsPerSec / b.InstsPerSec
		mark := ""
		if ratio < tol {
			mark = "  REGRESSION"
			out.fail = true
		}
		out.lines = append(out.lines, fmt.Sprintf("%-4s  %14.0f  %14.0f  %6.2fx%s", label, b.InstsPerSec, n.InstsPerSec, ratio, mark))
	}
}

// measure times RunSlice per generation. Each of reps batches runs the
// slice `iters` times; the fastest batch defines the reported numbers.
// Allocation counts come from runtime.MemStats deltas across all
// batches — steady-state runs allocate only per-simulator construction,
// so the per-op figures stay near the construction footprint.
func measure(reps int, smoke bool) *Report {
	sl, err := workload.ByName(benchSlice, benchSpec)
	if err != nil {
		fatal(err)
	}
	rep := &Report{
		Slice:     benchSlice,
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Env:       collectEnv(),
	}
	for _, g := range append(core.Generations(), tageGen()) {
		// Warm (and measure instruction count) outside the timed region.
		sl.Reset()
		r := core.RunSlice(g, sl)
		rep.Insts = r.Insts

		iters := calibrate(g, sl)
		if smoke {
			reps, iters = 1, 1
		}
		var ms0, ms1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&ms0)
		best := time.Duration(1<<63 - 1)
		for rI := 0; rI < reps; rI++ {
			start := time.Now()
			for i := 0; i < iters; i++ {
				sl.Reset()
				core.RunSlice(g, sl)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		runtime.ReadMemStats(&ms1)
		ops := float64(reps * iters)
		nsPerOp := float64(best.Nanoseconds()) / float64(iters)
		rep.Results = append(rep.Results, GenResult{
			Gen:         g.Name,
			NsPerOp:     nsPerOp,
			InstsPerSec: float64(rep.Insts) / (nsPerOp / 1e9),
			BytesPerOp:  float64(ms1.TotalAlloc-ms0.TotalAlloc) / ops,
			AllocsPerOp: float64(ms1.Mallocs-ms0.Mallocs) / ops,
			Iterations:  iters,
			Reps:        reps,
		})
	}
	rep.PopulationCold = measurePopulation(reps, smoke)
	// The warm entry measures the full steady-state serving stack: warm
	// snapshots to skip re-warming plus a simulator pool shared across
	// reps, exactly the configuration a long-lived exyserve process
	// converges to. The cold entry keeps the historical methodology
	// (fresh simulators, full warmup) for baseline continuity.
	warm := experiments.NewWarmCache()
	rep.Population = measurePopulation(reps, smoke,
		experiments.WithWarmSnapshots(warm), experiments.WithSimPool(experiments.NewSimPool()))
	rep.PopulationFabric = measureFabric(reps, smoke)
	rep.TracePopulation = measureTracePopulation(reps, smoke)
	return rep
}

// measureTracePopulation times the real-trace pipeline end to end: a
// deterministic multi-phase ChampSim stream is SimPoint-ingested into a
// fresh content-addressed store (streaming analysis + weighted slice
// extraction), then the ingested population sweeps every generation
// with weighted estimates. Each rep pays the whole pipeline — ingest is
// the point of the entry, so it stays on the clock. InstsPerSec divides
// the sweep's measured instructions by that full wall time.
func measureTracePopulation(reps int, smoke bool) *PopResult {
	spec := benchSpec
	if smoke {
		spec, reps = popSmokeSpec, 1
	}
	// Phases from three synthetic families in an A B A B C A pattern —
	// enough structure for SimPoint to find more than one cluster.
	phaseSpec := workload.SuiteSpec{SlicesPerFamily: 1, InstsPerSlice: spec.InstsPerSlice, WarmupFrac: 0, Seed: spec.Seed}
	var src bytes.Buffer
	for _, name := range []string{"micro.tight/0", "specint/0", "micro.tight/0", "specint/0", "web/0", "micro.tight/0"} {
		sl, err := workload.ByName(name, phaseSpec)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChampSim(&src, sl); err != nil {
			fatal(err)
		}
	}
	cfg := simpoint.DefaultConfig()
	cfg.IntervalInsts = spec.InstsPerSlice / 2
	cfg.MaxK = 4

	pipeline := func() (*experiments.PopulationRun, float64) {
		dir, err := os.MkdirTemp("", "exybench-trace-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(dir)
		t0 := time.Now()
		st, err := tracestore.Open(dir)
		if err != nil {
			fatal(err)
		}
		pop, _, err := st.Ingest(func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(src.Bytes())), nil
		}, tracestore.IngestOptions{Name: "bench", SimPoint: cfg})
		if err != nil {
			fatal(err)
		}
		p, err := experiments.Run(context.Background(), spec,
			experiments.WithPopulation(pop.Meta.ID, pop.Slices))
		if err != nil {
			fatal(err)
		}
		return p, time.Since(t0).Seconds()
	}
	p, _ := pipeline() // unscored warm pass
	best := float64(0)
	for r := 0; r < reps; r++ {
		var wall float64
		p, wall = pipeline()
		if best == 0 || wall < best {
			best = wall
		}
	}
	return &PopResult{
		// SlicesPerFamily 0 / InstsPerSlice = detail-interval length: the
		// spec identity comparePop gates on, stable across machines.
		InstsPerSlice: cfg.IntervalInsts,
		Slices:        len(p.Slices),
		TotalInsts:    p.TotalInsts,
		WallSeconds:   best,
		InstsPerSec:   float64(p.TotalInsts) / best,
		Reps:          reps,
	}
}

// measureFabric times sweeps routed through the distributed fabric: an
// in-process coordinator with 4 local workers (each owning its own
// simulator pool and warm cache, splitting GOMAXPROCS between them —
// the topology `exyserve --worker` builds, minus the HTTP hop). The
// unscored first sweep fills the worker warm caches and the
// coordinator's digest-keyed shard cache; the scored reps then measure
// the steady state a repeated-sweep serving campaign converges to,
// where shards are answered from the shared cache and only planning,
// cache lookup, and the bit-identical merge remain on the wall clock.
func measureFabric(reps int, smoke bool) *PopResult {
	spec := benchSpec
	if smoke {
		spec, reps = popSmokeSpec, 1
	}
	const workers = 4
	per := runtime.GOMAXPROCS(0) / workers
	if per < 1 {
		per = 1
	}
	coord := fabric.NewCoordinator(fabric.Config{Poll: 2 * time.Millisecond, ShardSlices: 4})
	ctx, cancel := context.WithCancel(context.Background())
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		pool := experiments.NewSimPool()
		warmCache := experiments.NewWarmCache()
		run := func(ctx context.Context, job fabric.ShardJob) (*experiments.ShardDoc, error) {
			return experiments.RunShard(ctx, job.Spec, job.Unit,
				experiments.WithSimPool(pool),
				experiments.WithWarmSnapshots(warmCache),
				experiments.WithWorkers(per))
		}
		w := fabric.NewWorker(coord, fmt.Sprintf("bench-%d", i), run)
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.Run(ctx)
		}()
	}
	submit := func() (*experiments.PopulationRun, float64) {
		t0 := time.Now()
		p, err := coord.Submit(context.Background(), fabric.SubmitReq{Spec: spec})
		if err != nil {
			fatal(err)
		}
		return p, time.Since(t0).Seconds()
	}
	p, _ := submit() // unscored: warms worker caches and the shard cache
	slices := len(p.Slices)
	insts := p.TotalInsts
	best := float64(0)
	for r := 0; r < reps; r++ {
		_, wall := submit()
		if best == 0 || wall < best {
			best = wall
		}
	}
	cancel()
	wg.Wait()
	return &PopResult{
		SlicesPerFamily: spec.SlicesPerFamily,
		InstsPerSlice:   spec.InstsPerSlice,
		Slices:          slices,
		TotalInsts:      insts,
		WallSeconds:     best,
		InstsPerSec:     float64(insts) / best,
		Reps:            reps,
		Workers:         workers,
	}
}

// measurePopulation times full experiments.Run sweeps (min-of-reps wall
// seconds). Smoke mode runs one tiny-spec sweep, still covering suite
// generation, the worker pool, and Reset-based simulator reuse. The
// un-scored warm pass before the reps populates any WarmCache passed in
// opts, so the scored reps measure the steady state: every pair forking
// from its cached snapshot. InstsPerSec counts measured instructions
// only (stats reset at the warmup boundary), so warm and cold entries
// share a numerator.
func measurePopulation(reps int, smoke bool, opts ...experiments.Option) *PopResult {
	spec := benchSpec
	if smoke {
		spec, reps = popSmokeSpec, 1
	}
	sweep := func() *experiments.PopulationRun {
		p, err := experiments.Run(context.Background(), spec, opts...)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exybench:", err)
			os.Exit(2)
		}
		return p
	}
	best := float64(0)
	p := sweep() // warm (and count) outside the scored reps
	slices := len(p.Slices)
	insts := p.TotalInsts
	for r := 0; r < reps; r++ {
		p = sweep()
		if best == 0 || p.WallSeconds < best {
			best = p.WallSeconds
		}
	}
	return &PopResult{
		SlicesPerFamily: spec.SlicesPerFamily,
		InstsPerSlice:   spec.InstsPerSlice,
		Slices:          slices,
		TotalInsts:      insts,
		WallSeconds:     best,
		InstsPerSec:     float64(insts) / best,
		Reps:            reps,
	}
}

// tageGen is the predictor-lab throughput row: M6 with the M7-class
// TAGE-SC-L direction predictor and ITTAGE indirect targets swapped in
// through the pluggable-predictor seam. Comparing it to the M6 row
// shows what raw step-loop throughput the heavier predictor costs.
// Baselines that predate the row report it as "new" instead of gating.
func tageGen() core.GenConfig {
	g, ok := core.GenByName("M6")
	if !ok {
		fatal(fmt.Errorf("no M6 generation"))
	}
	spec := branch.TAGESpec(branch.M7TAGEConfig())
	ind := branch.M7ITTAGEConfig()
	spec.Indirect = &ind
	return core.Hypothetical(g, "tage", spec)
}

// calibrate picks an iteration count so one batch takes roughly 200ms —
// long enough to average out timer granularity, short enough that five
// batches per generation stay interactive.
func calibrate(g core.GenConfig, sl *trace.Slice) int {
	const target = 200 * time.Millisecond
	sl.Reset()
	start := time.Now()
	core.RunSlice(g, sl)
	per := time.Since(start)
	if per <= 0 {
		per = time.Millisecond
	}
	iters := int(target / per)
	if iters < 1 {
		iters = 1
	}
	if iters > 500 {
		iters = 500
	}
	return iters
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &r, nil
}

func printTable(rep *Report) {
	fmt.Printf("slice %s, %d insts/op, %s, %d cpus\n", rep.Slice, rep.Insts, rep.GoVersion, rep.NumCPU)
	fmt.Printf("%-4s  %12s  %14s  %12s  %10s\n", "gen", "ms/op", "insts/s", "B/op", "allocs/op")
	for _, r := range rep.Results {
		fmt.Printf("%-4s  %12.2f  %14.0f  %12.0f  %10.1f\n",
			r.Gen, r.NsPerOp/1e6, r.InstsPerSec, r.BytesPerOp, r.AllocsPerOp)
	}
	if p := rep.Population; p != nil {
		fmt.Printf("population (warm): %d slices x %d insts x 6 gens, %.2fs wall, %.0f insts/s (best of %d)\n",
			p.Slices, p.InstsPerSlice, p.WallSeconds, p.InstsPerSec, p.Reps)
	}
	if p := rep.PopulationCold; p != nil {
		fmt.Printf("population (cold): %d slices x %d insts x 6 gens, %.2fs wall, %.0f insts/s (best of %d)\n",
			p.Slices, p.InstsPerSlice, p.WallSeconds, p.InstsPerSec, p.Reps)
	}
	if p := rep.PopulationFabric; p != nil {
		fmt.Printf("population (fabric): %d slices x %d insts x 6 gens, %d workers, %.4fs wall, %.0f insts/s (best of %d)\n",
			p.Slices, p.InstsPerSlice, p.Workers, p.WallSeconds, p.InstsPerSec, p.Reps)
		if w := rep.Population; w != nil && w.InstsPerSec > 0 && p.InstsPerSec > 0 {
			fmt.Printf("  fabric steady-state vs single-process warm: %.2fx\n", p.InstsPerSec/w.InstsPerSec)
		}
	}
	if p := rep.TracePopulation; p != nil {
		fmt.Printf("trace pipeline: ingest + weighted sweep, %d slices (interval %d) x 6 gens, %.2fs wall, %.0f insts/s (best of %d)\n",
			p.Slices, p.InstsPerSlice, p.WallSeconds, p.InstsPerSec, p.Reps)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exybench:", err)
	os.Exit(1)
}
