// Command exyserve runs the sweep-serving daemon: an HTTP/JSON API over
// the simulator's population-sweep and single-slice experiments, with a
// bounded job queue, pooled Reset()-recycled simulators, progress
// streaming, a digest-keyed result cache, and graceful drain on
// SIGINT/SIGTERM.
//
// Every exyserve is also a sweep-fabric coordinator: other exyserve
// processes started with --worker --join <url> register with it, lease
// (generation, slice-range) shards of its population sweeps, and upload
// results the coordinator merges bit-identically to a single-process
// run. A worker keeps its own HTTP API (health, metrics, its own local
// jobs) while its fabric loop computes remote shards.
//
// Usage:
//
//	exyserve [--addr=localhost:8080] [--workers=2] [--queue=16]
//	         [--sweep-workers=0] [--cache=64] [--checkpoint-dir=DIR]
//	         [--trace-dir=DIR]
//	         [--drain-timeout=30s] [--log-format=text|json] [--pprof]
//	         [--worker --join=URL]
//	         [--fabric-lease-ttl=10s] [--fabric-shard-slices=8]
//	         [--fabric-cache=1024]
//
// Quickstart (single process):
//
//	exyserve --addr=localhost:8080 &
//	curl -s localhost:8080/v1/jobs -d '{"preset":"tiny"}'          # submit
//	curl -s localhost:8080/v1/jobs/j000001                         # poll
//	curl -sN localhost:8080/v1/jobs/j000001/stream                 # JSONL progress
//	curl -s localhost:8080/metrics                                 # Prometheus text
//	curl -s localhost:8080/healthz                                 # health doc
//
// Quickstart (1 coordinator + 2 workers):
//
//	exyserve --addr=localhost:8080 &
//	exyserve --addr=localhost:8081 --worker --join=http://localhost:8080 &
//	exyserve --addr=localhost:8082 --worker --join=http://localhost:8080 &
//	curl -s localhost:8080/v1/jobs -d '{"preset":"quick"}'         # sharded sweep
//	curl -s localhost:8080/metrics | grep fabric                   # lease/steal/cache
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"exysim/internal/fabric"
	"exysim/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("exyserve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	workers := fs.Int("workers", 2, "jobs executing concurrently")
	queue := fs.Int("queue", 16, "queued-job backlog before 429s")
	sweepWorkers := fs.Int("sweep-workers", 0, "worker goroutines per population sweep (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 64, "result cache entries (negative disables)")
	snapBudget := fs.Int64("snapshot-budget", 0, "resident warm-snapshot bytes (0 = 2 GiB default, negative disables warm cache)")
	ckptDir := fs.String("checkpoint-dir", "", "checkpoint population jobs under DIR for resume")
	traceDir := fs.String("trace-dir", "", "content-addressed trace population store under DIR (enables POST /v1/traces)")
	drain := fs.Duration("drain-timeout", serve.DrainDefault, "grace period for in-flight jobs on shutdown")
	logFormat := fs.String("log-format", "text", "structured log format on stderr (text|json)")
	enablePprof := fs.Bool("pprof", false, "mount /debug/pprof on the API listener")
	workerMode := fs.Bool("worker", false, "join a coordinator's sweep fabric and compute leased shards")
	join := fs.String("join", "", "coordinator URL to join (requires --worker)")
	fabricTTL := fs.Duration("fabric-lease-ttl", 0, "fabric lease TTL before shards are stolen (0 = 10s default)")
	fabricShard := fs.Int("fabric-shard-slices", 0, "slices per fabric work unit (0 = 8 default)")
	fabricCache := fs.Int("fabric-cache", 0, "shared shard-result cache entries (0 = 1024 default, negative disables)")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *workerMode && *join == "" {
		fmt.Fprintln(os.Stderr, "exyserve: --worker requires --join=URL")
		return 2
	}
	if !*workerMode && *join != "" {
		fmt.Fprintln(os.Stderr, "exyserve: --join requires --worker")
		return 2
	}
	var handler slog.Handler
	switch *logFormat {
	case "text", "":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "exyserve: unknown --log-format %q (text|json)\n", *logFormat)
		return 2
	}
	logger := slog.New(handler)

	srv := serve.New(serve.Config{
		Workers:           *workers,
		QueueDepth:        *queue,
		SweepParallelism:  *sweepWorkers,
		CacheEntries:      *cacheEntries,
		SnapshotBudget:    *snapBudget,
		CheckpointDir:     *ckptDir,
		TraceDir:          *traceDir,
		EnablePprof:       *enablePprof,
		FabricLeaseTTL:    *fabricTTL,
		FabricShardSlices: *fabricShard,
		FabricCacheShards: *fabricCache,
		Logger:            logger,
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "exyserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	// Worker mode: join the coordinator's fabric and compute leased
	// shards on this process's pool and warm cache. The loop runs until
	// drain, which hands outstanding leases back instead of letting
	// them age out.
	var (
		fw         *fabric.Worker
		workerDone chan error
		stopWorker context.CancelFunc
	)
	if *workerMode {
		host, err := os.Hostname()
		if err != nil {
			host = "exyserve"
		}
		name := fmt.Sprintf("%s-%d", host, os.Getpid())
		// Trace shards name populations by content id; resolve the ones
		// this worker doesn't hold from the coordinator's bundle endpoint.
		srv.SetTraceFetcher(serve.HTTPTraceFetcher(*join))
		fw = fabric.NewWorker(fabric.NewClient(*join), name, srv.ShardRunner())
		var wctx context.Context
		wctx, stopWorker = context.WithCancel(context.Background())
		defer stopWorker()
		workerDone = make(chan error, 1)
		fmt.Fprintf(os.Stderr, "exyserve: joining fabric at %s as %s\n", *join, name)
		go func() { workerDone <- fw.Run(wctx) }()
	}

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		return 1
	case err := <-workerDone:
		// A worker that cannot stay joined (version skew, coordinator
		// gone for good) is useless: exit so the supervisor restarts it.
		fmt.Fprintln(os.Stderr, "exyserve: fabric worker stopped:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight jobs finish (or
	// checkpoint and abandon at the deadline), then exit. A fabric
	// worker first stops leasing and explicitly hands its outstanding
	// leases back so the coordinator requeues them immediately.
	fmt.Fprintf(os.Stderr, "exyserve: draining (up to %s)\n", *drain)
	code := 0
	if fw != nil {
		stopWorker()
		select {
		case <-workerDone:
		case <-time.After(*drain):
			code = 1
		}
		if err := fw.Release(); err != nil {
			fmt.Fprintln(os.Stderr, "exyserve: fabric lease handback failed:", err)
		}
	}
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "exyserve: drain deadline hit, in-flight jobs canceled")
		code = 1
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "exyserve: stopped")
	return code
}
