// Command exyserve runs the sweep-serving daemon: an HTTP/JSON API over
// the simulator's population-sweep and single-slice experiments, with a
// bounded job queue, pooled Reset()-recycled simulators, progress
// streaming, a digest-keyed result cache, and graceful drain on
// SIGINT/SIGTERM.
//
// Usage:
//
//	exyserve [--addr=localhost:8080] [--workers=2] [--queue=16]
//	         [--sweep-workers=0] [--cache=64] [--checkpoint-dir=DIR]
//	         [--drain-timeout=30s] [--log-format=text|json] [--pprof]
//
// Quickstart:
//
//	exyserve --addr=localhost:8080 &
//	curl -s localhost:8080/v1/jobs -d '{"preset":"tiny"}'          # submit
//	curl -s localhost:8080/v1/jobs/j000001                         # poll
//	curl -sN localhost:8080/v1/jobs/j000001/stream                 # JSONL progress
//	curl -s localhost:8080/metrics                                 # Prometheus text
//	curl -s localhost:8080/metrics?format=json                     # JSON snapshot
//	curl -s localhost:8080/healthz                                 # health doc
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"exysim/internal/serve"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("exyserve", flag.ContinueOnError)
	addr := fs.String("addr", "localhost:8080", "listen address")
	workers := fs.Int("workers", 2, "jobs executing concurrently")
	queue := fs.Int("queue", 16, "queued-job backlog before 429s")
	sweepWorkers := fs.Int("sweep-workers", 0, "worker goroutines per population sweep (0 = GOMAXPROCS)")
	cacheEntries := fs.Int("cache", 64, "result cache entries (negative disables)")
	snapBudget := fs.Int64("snapshot-budget", 0, "resident warm-snapshot bytes (0 = 2 GiB default, negative disables warm cache)")
	ckptDir := fs.String("checkpoint-dir", "", "checkpoint population jobs under DIR for resume")
	drain := fs.Duration("drain-timeout", serve.DrainDefault, "grace period for in-flight jobs on shutdown")
	logFormat := fs.String("log-format", "text", "structured log format on stderr (text|json)")
	enablePprof := fs.Bool("pprof", false, "mount /debug/pprof on the API listener")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var handler slog.Handler
	switch *logFormat {
	case "text", "":
		handler = slog.NewTextHandler(os.Stderr, nil)
	case "json":
		handler = slog.NewJSONHandler(os.Stderr, nil)
	default:
		fmt.Fprintf(os.Stderr, "exyserve: unknown --log-format %q (text|json)\n", *logFormat)
		return 2
	}

	srv := serve.New(serve.Config{
		Workers:          *workers,
		QueueDepth:       *queue,
		SweepParallelism: *sweepWorkers,
		CacheEntries:     *cacheEntries,
		SnapshotBudget:   *snapBudget,
		CheckpointDir:    *ckptDir,
		EnablePprof:      *enablePprof,
		Logger:           slog.New(handler),
	})
	httpSrv := &http.Server{Handler: srv.Handler()}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "exyserve: listening on http://%s\n", ln.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	select {
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		return 1
	case <-ctx.Done():
	}

	// Drain: stop accepting connections, let in-flight jobs finish (or
	// checkpoint and abandon at the deadline), then exit.
	fmt.Fprintf(os.Stderr, "exyserve: draining (up to %s)\n", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	code := 0
	if err := srv.Shutdown(dctx); err != nil {
		fmt.Fprintln(os.Stderr, "exyserve: drain deadline hit, in-flight jobs canceled")
		code = 1
	}
	if err := httpSrv.Shutdown(dctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		fmt.Fprintln(os.Stderr, "exyserve:", err)
		code = 1
	}
	fmt.Fprintln(os.Stderr, "exyserve: stopped")
	return code
}
