// Command exysim regenerates the paper's tables and figures from the
// simulator, runs single slices with detailed statistics, and executes
// the ablation studies.
//
// Usage:
//
//	exysim tables --id=1|2|3|4        # Table I..IV
//	exysim fig1                       # MPKI vs GHIST length sweep
//	exysim fig9 [--points=N]          # MPKI population curves per generation
//	exysim fig16 [--points=N]         # load-latency population curves
//	exysim fig17 [--points=N]         # IPC population curves
//	exysim summary                    # headline numbers vs the paper
//	exysim power                      # front-end energy proxy per generation
//	exysim branchstats                # §IV-A dual-slot statistics
//	exysim ablate [--feature=name]    # design-choice ablations
//	exysim run --gen=M4 --slice=web/3 # one slice, full detail
//
// The --spec flag (tiny|quick|standard) sizes the synthetic population.
// Population commands also accept --m7='{"kind":"tage-sc-l"}' to sweep a
// hypothetical M7 generation (derived from --m7-base, default M6)
// beside the shipped cores.
//
// Global flags (valid in any position, before or after the subcommand):
//
//	--pprof=ADDR        serve net/http/pprof on ADDR (e.g. localhost:6060)
//	--cpuprofile=FILE   write a CPU profile of the whole invocation
//	--memprofile=FILE   write a heap profile at exit
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"sync"
	"syscall"
	"time"

	"exysim/internal/branch"
	"exysim/internal/cluster"
	"exysim/internal/core"
	"exysim/internal/experiments"
	"exysim/internal/obs"
	"exysim/internal/trace"
	"exysim/internal/workload"
)

func specByName(name string) workload.SuiteSpec {
	switch name {
	case "tiny":
		return workload.TinySpec
	case "quick":
		return workload.QuickSpec
	case "standard", "":
		return workload.StandardSpec
	default:
		fmt.Fprintf(os.Stderr, "unknown spec %q (tiny|quick|standard)\n", name)
		os.Exit(2)
		panic("unreachable")
	}
}

// profiling holds the simulator's self-profiling options, extracted
// from anywhere on the command line so `exysim run --cpuprofile=f` and
// `exysim --cpuprofile=f run` both work.
type profiling struct {
	pprofAddr  string
	cpuProfile string
	memProfile string
}

// extractGlobalFlags strips --pprof/--cpuprofile/--memprofile (with
// either --flag=value or --flag value spelling) from args and returns
// the remainder plus the collected options.
func extractGlobalFlags(args []string) ([]string, profiling) {
	var p profiling
	var rest []string
	set := func(name, val string) bool {
		switch name {
		case "pprof":
			p.pprofAddr = val
		case "cpuprofile":
			p.cpuProfile = val
		case "memprofile":
			p.memProfile = val
		default:
			return false
		}
		return true
	}
	for i := 0; i < len(args); i++ {
		a := args[i]
		name := strings.TrimLeft(a, "-")
		if eq := strings.IndexByte(name, '='); eq >= 0 && strings.HasPrefix(a, "-") {
			if set(name[:eq], name[eq+1:]) {
				continue
			}
		} else if strings.HasPrefix(a, "-") && i+1 < len(args) &&
			(name == "pprof" || name == "cpuprofile" || name == "memprofile") {
			set(name, args[i+1])
			i++
			continue
		}
		rest = append(rest, a)
	}
	return rest, p
}

// start brings up the requested profilers and returns a stop function
// for the ones that must flush at exit.
func (p profiling) start() func() {
	if p.pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(p.pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "pprof server: %v\n", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "pprof serving on http://%s/debug/pprof/\n", p.pprofAddr)
	}
	var cpu *os.File
	if p.cpuProfile != "" {
		f, err := os.Create(p.cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		cpu = f
	}
	return func() {
		if cpu != nil {
			pprof.StopCPUProfile()
			cpu.Close()
		}
		if p.memProfile != "" {
			f, err := os.Create(p.memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
			f.Close()
		}
	}
}

func main() {
	args, prof := extractGlobalFlags(os.Args[1:])
	if len(args) < 1 {
		usage()
		os.Exit(2)
	}
	stopProf := prof.start()
	defer stopProf()
	cmd, args := args[0], args[1:]
	switch cmd {
	case "tables":
		cmdTables(args)
	case "fig1":
		cmdFig1(args)
	case "fig9":
		cmdCurve(args, "fig9", "Fig. 9 — MPKI across workload slices (sorted per generation, clipped at 20)",
			"mpki", 20)
	case "fig16":
		cmdCurve(args, "fig16", "Fig. 16 — average load latency across workload slices (sorted per generation)",
			"load_lat", 0)
	case "fig17":
		cmdCurve(args, "fig17", "Fig. 17 — IPC across workload slices (sorted per generation)",
			"ipc", 0)
	case "summary":
		cmdSummary(args)
	case "report":
		cmdReport(args)
	case "power":
		cmdPower(args)
	case "security":
		cmdSecurity(args)
	case "sharing":
		cmdSharing(args)
	case "timeline":
		cmdTimeline(args)
	case "cluster":
		cmdCluster(args)
	case "branchstats":
		cmdBranchStats(args)
	case "ablate":
		cmdAblate(args)
	case "run":
		cmdRun(args)
	default:
		usage()
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: exysim <tables|fig1|fig9|fig16|fig17|summary|report|power|security|sharing|timeline|cluster|branchstats|ablate|run> [flags]")
}

func cmdTables(args []string) {
	fs := flag.NewFlagSet("tables", flag.ExitOnError)
	id := fs.Int("id", 0, "table number (1-4); 0 prints all")
	pf := runPopulationFlags(fs)
	format := fs.String("format", "text", "output format (text|json)")
	_ = fs.Parse(args)
	if *format == "json" {
		out := struct {
			Generations []string               `json:"generations"`
			TableII     []branch.StorageBudget `json:"table2_storage_kb"`
			TableIV     map[string]float64     `json:"table4_load_lat_means,omitempty"`
		}{}
		for _, g := range core.Generations() {
			out.Generations = append(out.Generations, g.Name)
		}
		out.TableII = experiments.TableII()
		if *id == 4 || *id == 0 {
			p := runPopulation("tables", pf, nil)
			out.TableIV = map[string]float64{}
			for g, v := range p.Means(experiments.MetricLoadLat) {
				out.TableIV[p.Gens[g].Name] = v
			}
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	if *id == 1 || *id == 0 {
		fmt.Println(experiments.RenderTableI())
	}
	if *id == 2 || *id == 0 {
		fmt.Println(experiments.RenderTableII())
	}
	if *id == 3 || *id == 0 {
		fmt.Println(experiments.RenderTableIII())
	}
	if *id == 4 || *id == 0 {
		p := runPopulation("tables", pf, nil)
		fmt.Println(experiments.RenderTableIV(p))
	}
}

func cmdFig1(args []string) {
	fs := flag.NewFlagSet("fig1", flag.ExitOnError)
	slices := fs.Int("slices", 8, "CBP-like trace count")
	insts := fs.Int("insts", 60_000, "instructions per trace")
	_ = fs.Parse(args)
	pts := experiments.Fig1(*slices, *insts, nil, 0xE59)
	fmt.Println(experiments.RenderFig1(pts))
}

// warmCache returns the process-wide snapshot cache behind
// --warm-snapshots: a command that runs several sweeps (report, curves
// over multiple figures) pays each (generation, slice) warmup once.
var warmCache = sync.OnceValue(experiments.NewWarmCache)

// mustPopRun is the no-flags spelling of experiments.Run for commands
// without the shared population flag surface.
func mustPopRun(spec workload.SuiteSpec) *experiments.PopulationRun {
	p, err := experiments.Run(context.Background(), spec)
	if err != nil {
		fmt.Fprintln(os.Stderr, "exysim:", err)
		os.Exit(2)
	}
	return p
}

// popFlags is the shared flag surface of the population commands
// (fig9/fig16/fig17/summary/tables --id=4): sizing, progress reporting,
// manifest export, and the sweep-robustness knobs.
type popFlags struct {
	spec          *string
	progress      *bool
	manifestOut   *string
	checkpoint    *string
	resume        *bool
	sliceDeadline *time.Duration
	retries       *int
	spanOut       *string
	warm          *bool
	m7            *string
	m7Base        *string
}

func runPopulationFlags(fs *flag.FlagSet) *popFlags {
	return &popFlags{
		spec:          fs.String("spec", "quick", "population size (tiny|quick|standard)"),
		progress:      fs.Bool("progress", false, "report slices done / sim-MIPS / ETA on stderr"),
		manifestOut:   fs.String("manifest-out", "", "write a run manifest JSON to FILE"),
		checkpoint:    fs.String("checkpoint", "", "append completed (gen,slice) results to FILE as JSONL"),
		resume:        fs.Bool("resume", false, "skip slices already recorded in --checkpoint"),
		sliceDeadline: fs.Duration("slice-deadline", 0, "per-slice wall-clock budget (0 = none)"),
		retries:       fs.Int("retries", 0, "retry a failed slice up to N times on a fresh simulator"),
		spanOut:       fs.String("span-out", "", "write a wall-clock span trace (Perfetto JSON) of the sweep to FILE"),
		warm: fs.Bool("warm-snapshots", false,
			"cache warm-state snapshots so repeated sweeps in this process fork past each slice's warmup (results stay bit-identical)"),
		m7: fs.String("m7", "",
			`sweep a hypothetical M7 beside M1..M6: a predictor spec as JSON (e.g. '{"kind":"tage-sc-l"}')`),
		m7Base: fs.String("m7-base", "M6", "generation the hypothetical M7 derives from"),
	}
}

// runPopulation executes the sweep honoring the shared flags and writes
// the manifest (if requested), recording any companion artifacts. A
// sweep with quarantined slices still succeeds — partial results are
// the point of the robustness layer — but the failure report goes to
// stderr so the quarantine is never silent.
func runPopulation(command string, pf *popFlags, artifacts map[string]string) *experiments.PopulationRun {
	sp := specByName(*pf.spec)
	opts := []experiments.Option{
		experiments.WithSliceDeadline(*pf.sliceDeadline),
		experiments.WithRetries(*pf.retries),
	}
	genCount := len(core.Generations())
	if *pf.m7 != "" {
		var spec branch.PredictorSpec
		if err := json.Unmarshal([]byte(*pf.m7), &spec); err != nil {
			fmt.Fprintf(os.Stderr, "exysim: bad --m7 spec: %v\n", err)
			os.Exit(2)
		}
		gens, err := experiments.HypotheticalGens(*pf.m7Base, "M7", spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "exysim:", err)
			os.Exit(2)
		}
		opts = append(opts, experiments.WithGenerations(gens))
		genCount = len(gens)
	}
	if *pf.warm {
		opts = append(opts, experiments.WithWarmSnapshots(warmCache()))
	}
	if *pf.progress {
		total := len(workload.Suite(sp)) * genCount
		opts = append(opts, experiments.WithProgress(obs.NewProgress(os.Stderr, command, total)))
	}
	if *pf.checkpoint != "" {
		opts = append(opts, experiments.WithCheckpoint(*pf.checkpoint))
	}
	if *pf.resume {
		opts = append(opts, experiments.WithResume())
	}
	// Telemetry is always on for CLI sweeps: one clock read per slice,
	// bit-identical results, and the slow-slice report is the first thing
	// to look at when a sweep dragged.
	tel := experiments.NewSweepTelemetry()
	opts = append(opts, experiments.WithTelemetry(tel))
	var spans *obs.SpanTracer
	if *pf.spanOut != "" {
		spans = obs.NewSpanTracer(1 << 16)
		opts = append(opts, experiments.WithSpanTracer(spans))
	}
	// Ctrl-C / SIGTERM cancels the sweep mid-slice; with --checkpoint the
	// completed pairs survive for a later --resume.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	p, err := experiments.Run(ctx, sp, opts...)
	if err != nil {
		if errors.Is(err, context.Canceled) && *pf.checkpoint != "" {
			fmt.Fprintf(os.Stderr, "exysim: interrupted; completed slices checkpointed to %s (rerun with --resume)\n", *pf.checkpoint)
		} else {
			fmt.Fprintln(os.Stderr, "exysim:", err)
		}
		os.Exit(2)
	}
	if rep := p.FailureReport(); rep != "" {
		fmt.Fprint(os.Stderr, rep)
	}
	if rep := tel.Report(); rep != "" {
		fmt.Fprint(os.Stderr, rep)
	}
	if spans != nil {
		if err := spans.WriteJSONFile(*pf.spanOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if *pf.manifestOut != "" {
		m := p.Manifest(command)
		if *pf.checkpoint != "" {
			m.AddArtifact("checkpoint", *pf.checkpoint)
		}
		if spans != nil {
			m.AddArtifact("spans", *pf.spanOut)
			m.SpanDropped = spans.Dropped()
		}
		for k, v := range artifacts {
			m.AddArtifact(k, v)
		}
		if err := m.Write(*pf.manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	return p
}

func cmdCurve(args []string, name, title, metric string, clip float64) {
	fs := flag.NewFlagSet("fig", flag.ExitOnError)
	pf := runPopulationFlags(fs)
	points := fs.Int("points", 12, "sampled positions along the sorted population")
	summary := fs.Bool("summary", false, "print headline numbers too")
	csv := fs.Bool("csv", false, "emit plot-ready CSV (alias for --format=csv)")
	format := fs.String("format", "text", "output format (text|json|csv)")
	metricsOut := fs.String("metrics-out", "", "write the per-generation curve data as JSON to FILE")
	_ = fs.Parse(args)
	if *csv {
		*format = "csv"
	}
	artifacts := map[string]string{}
	if *metricsOut != "" {
		artifacts["metrics"] = *metricsOut
	}
	p := runPopulation(name, pf, artifacts)
	doc, err := p.CurveDoc(name, metric, *points)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *metricsOut != "" {
		if err := writeCurveJSONFile(*metricsOut, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	switch *format {
	case "csv":
		fmt.Print("position")
		for _, gn := range doc.Generations {
			fmt.Printf(",%s", gn)
		}
		fmt.Println()
		for i := 0; i < *points; i++ {
			fmt.Printf("%d", i)
			for _, gn := range doc.Generations {
				fmt.Printf(",%g", doc.Curves[gn][i])
			}
			fmt.Println()
		}
	case "json":
		if err := writeCurveJSON(os.Stdout, doc); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	case "text", "":
		curves := make([][]float64, len(doc.Generations))
		for g, gn := range doc.Generations {
			curves[g] = doc.Curves[gn]
		}
		fmt.Println(experiments.RenderCurves(title, p.Gens, curves, clip))
		if *summary {
			fmt.Println(experiments.Summary(p))
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown format %q (text|json|csv)\n", *format)
		os.Exit(2)
	}
}

func writeCurveJSON(w *os.File, doc experiments.CurveDoc) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

func writeCurveJSONFile(path string, doc experiments.CurveDoc) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := writeCurveJSON(f, doc); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func cmdSummary(args []string) {
	fs := flag.NewFlagSet("summary", flag.ExitOnError)
	pf := runPopulationFlags(fs)
	format := fs.String("format", "text", "output format (text|json)")
	_ = fs.Parse(args)
	p := runPopulation("summary", pf, nil)
	if *format == "json" {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(p.SummaryDoc()); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		return
	}
	fmt.Println(experiments.Summary(p))
}

// cmdReport runs the population once and prints every table and figure.
func cmdReport(args []string) {
	fs := flag.NewFlagSet("report", flag.ExitOnError)
	spec := fs.String("spec", "standard", "population size")
	points := fs.Int("points", 12, "curve sample points")
	_ = fs.Parse(args)
	p := mustPopRun(specByName(*spec))
	fmt.Println(experiments.RenderTableI())
	fmt.Println(experiments.RenderTableII())
	fmt.Println(experiments.RenderTableIII())
	fmt.Println(experiments.RenderTableIV(p))
	fmt.Println(experiments.RenderFig1(experiments.Fig1(8, 100_000, nil, 0xE59)))
	fmt.Println(experiments.RenderCurves("Fig. 9 — MPKI across workload slices (sorted per generation, clipped at 20)",
		p.Gens, p.Curves(experiments.MetricMPKI, *points), 20))
	fmt.Println(experiments.RenderCurves("Fig. 16 — average load latency across workload slices (sorted per generation)",
		p.Gens, p.Curves(experiments.MetricLoadLat, *points), 0))
	fmt.Println(experiments.RenderCurves("Fig. 17 — IPC across workload slices (sorted per generation)",
		p.Gens, p.Curves(experiments.MetricIPC, *points), 0))
	fmt.Println(experiments.Summary(p))
}

// cmdPower prints the front-end energy proxy per generation.
func cmdPower(args []string) {
	fs := flag.NewFlagSet("power", flag.ExitOnError)
	spec := fs.String("spec", "quick", "population size")
	_ = fs.Parse(args)
	p := mustPopRun(specByName(*spec))
	fmt.Println(experiments.RenderPower(p))
}

// cmdSecurity prints the §V mitigation-cost study.
func cmdSecurity(args []string) {
	fs := flag.NewFlagSet("security", flag.ExitOnError)
	spec := fs.String("spec", "quick", "population size")
	rekey := fs.Int("rekey", 20_000, "re-key period in instructions")
	_ = fs.Parse(args)
	fmt.Println(experiments.RenderSecurity(experiments.SecurityCost(specByName(*spec), *rekey)))
}

// cmdSharing prints the §III shared-vs-private L2 study.
func cmdSharing(args []string) {
	fs := flag.NewFlagSet("sharing", flag.ExitOnError)
	spec := fs.String("spec", "quick", "population size")
	_ = fs.Parse(args)
	fmt.Println(experiments.RenderSharing(experiments.SharingStudy(specByName(*spec), nil)))
}

// cmdTimeline prints per-interval IPC/MPKI for one slice — the phase
// view that §II's SimPoint methodology clusters.
func cmdTimeline(args []string) {
	fs := flag.NewFlagSet("timeline", flag.ExitOnError)
	gen := fs.String("gen", "M6", "generation")
	sliceName := fs.String("slice", "specint/0", "workload slice")
	spec := fs.String("spec", "quick", "suite sizing")
	interval := fs.Int("interval", 10_000, "interval length in instructions")
	_ = fs.Parse(args)
	g, ok := core.GenByName(*gen)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generation %q\n", *gen)
		os.Exit(2)
	}
	sl, err := workload.ByName(*sliceName, specByName(*spec))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	sim := core.NewSimulator(g)
	fmt.Printf("%s on %s, %d-instruction intervals\n", sl.Name, *gen, *interval)
	fmt.Println("interval    IPC   MPKI")
	for _, ir := range sim.RunTimeline(sl, *interval) {
		fmt.Printf("%8d %6.2f %6.2f\n", ir.Interval, ir.IPC, ir.MPKI)
	}
}

// cmdCluster runs N copies of a workload family on an N-core cluster
// sharing the memory path (§I) and compares against solo runs.
func cmdCluster(args []string) {
	fs := flag.NewFlagSet("cluster", flag.ExitOnError)
	gen := fs.String("gen", "M4", "generation")
	cores := fs.Int("cores", 4, "cluster size")
	family := fs.String("family", "micro.stream", "workload family")
	insts := fs.Int("insts", 40_000, "instructions per slice")
	spec := fs.String("spec", "quick", "suite sizing (seed source)")
	_ = fs.Parse(args)
	g, ok := core.GenByName(*gen)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generation %q\n", *gen)
		os.Exit(2)
	}
	sp := specByName(*spec)
	var sls []*trace.Slice
	for i := 0; i < *cores; i++ {
		sl, err := workload.ByName(fmt.Sprintf("%s/%d", *family, i), workload.SuiteSpec{
			SlicesPerFamily: sp.SlicesPerFamily, InstsPerSlice: *insts, WarmupFrac: 0.25, Seed: sp.Seed,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		sls = append(sls, sl)
	}
	fmt.Printf("%d-core %s cluster, one %s slice per core (%d insts)\n", *cores, *gen, *family, *insts)
	fmt.Println("core   solo IPC   clustered IPC   slowdown")
	solos := make([]float64, len(sls))
	for i := range sls {
		solos[i] = cluster.New(g, 1).Run(sls[i : i+1])[0].IPC
	}
	results := cluster.New(g, *cores).Run(sls)
	for i, r := range results {
		fmt.Printf("%4d %10.3f %15.3f %9.1f%%\n", i, solos[i], r.IPC, (1-r.IPC/solos[i])*100)
	}
}

func cmdBranchStats(args []string) {
	fs := flag.NewFlagSet("branchstats", flag.ExitOnError)
	spec := fs.String("spec", "quick", "population size")
	_ = fs.Parse(args)
	lead, second, nt := experiments.BranchSlotStats(specByName(*spec))
	fmt.Printf("dual-prediction slots (§IV-A; paper: 60%% / 24%% / 16%%)\n")
	fmt.Printf("lead TAKEN      %5.1f%%\n", lead*100)
	fmt.Printf("second TAKEN    %5.1f%%\n", second*100)
	fmt.Printf("both NOT-TAKEN  %5.1f%%\n", nt*100)
}

func cmdAblate(args []string) {
	fs := flag.NewFlagSet("ablate", flag.ExitOnError)
	feature := fs.String("feature", "", "comma-separated study names (empty = all)")
	spec := fs.String("spec", "quick", "population size")
	_ = fs.Parse(args)
	var names []string
	if *feature != "" {
		names = strings.Split(*feature, ",")
	}
	fmt.Println(experiments.RenderAblations(names, specByName(*spec)))
}

func cmdRun(args []string) {
	fs := flag.NewFlagSet("run", flag.ExitOnError)
	gen := fs.String("gen", "M6", "generation (M1..M6)")
	sliceName := fs.String("slice", "specint/0", "workload slice, family/index")
	traceFile := fs.String("trace", "", "run a .exyt trace file instead of a synthetic slice")
	spec := fs.String("spec", "quick", "population sizing for the slice")
	metricsOut := fs.String("metrics-out", "", "write the full metrics snapshot as JSON to FILE")
	traceOut := fs.String("trace-out", "", "write a Chrome trace-event / Perfetto JSON to FILE (enables tracing)")
	traceCap := fs.Int("trace-cap", 1<<16, "tracer ring capacity in events (oldest overwritten)")
	traceSample := fs.Int("trace-sample", 1, "record every Nth traced event (deterministic sampling)")
	manifestOut := fs.String("manifest-out", "", "write a run manifest JSON to FILE")
	_ = fs.Parse(args)
	g, ok := core.GenByName(*gen)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown generation %q\n", *gen)
		os.Exit(2)
	}
	var sl *trace.Slice
	var err error
	if *traceFile != "" {
		var f *os.File
		if f, err = os.Open(*traceFile); err == nil {
			sl, err = trace.Read(f)
			f.Close()
		}
	} else {
		sl, err = workload.ByName(*sliceName, specByName(*spec))
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var man *obs.Manifest
	if *manifestOut != "" {
		man = obs.NewManifest("run")
	}
	sim := core.NewSimulator(g)
	var tr *obs.Tracer
	if *traceOut != "" {
		tr = obs.NewTracer(*traceCap)
		tr.SetSampling(uint64(*traceSample))
		sim.SetTracer(tr)
	}
	r := sim.Run(sl)
	if *metricsOut != "" {
		if err := sim.MetricsSnapshot().WriteJSONFile(*metricsOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if tr != nil {
		if err := tr.WriteJSONFile(*traceOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	if man != nil {
		man.TraceDropped = tr.Dropped()
		man.Generations = []obs.GenInfo{{Name: g.Name, ConfigDigest: obs.ConfigDigest(g)}}
		man.Workload = obs.WorkloadInfo{
			InstsPerSlice: len(sl.Insts),
			Seed:          specByName(*spec).Seed,
			Slices:        []string{sl.Name},
		}
		man.SimInsts = r.Insts
		man.SimCycles = r.Cycles
		man.AddArtifact("metrics", *metricsOut)
		man.AddArtifact("trace", *traceOut)
		if err := man.Write(*manifestOut); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
	}
	fmt.Printf("slice %s on %s\n", r.Slice, r.Gen)
	fmt.Printf("  insts %d  cycles %d  IPC %.3f\n", r.Insts, r.Cycles, r.IPC)
	fmt.Printf("  branch: MPKI %.2f (dir %d, target %d, indirect %d, return %d, BTBmiss %d), bubbles %d\n",
		r.MPKI, r.Front.MispredDir, r.Front.MispredTarget, r.Front.MispredIndirect,
		r.Front.MispredReturn, r.Front.MispredBTBMiss, r.Front.Bubbles)
	fmt.Printf("  sources: ubtb-locked %d, zat %d, 1at %d, mrb %d, l2btb-fills %d\n",
		r.Front.UBTBLockedPreds, r.Front.ZATHits, r.Front.OneATHits, r.Front.MRBCovered, r.Front.L2Fills)
	fmt.Printf("  memory: avg load lat %.2f cycles over %d loads; L1 %d, L2 %d, L3 %d, DRAM %d\n",
		r.AvgLoadLat, r.Mem.Loads, r.Mem.L1DHits, r.Mem.L2Hits, r.Mem.L3Hits, r.Mem.MemHits)
	fmt.Printf("  prefetch: in-flight hits %d, MAB stall cycles %d, castouts e/o/d %d/%d/%d, spec-read launches %d\n",
		r.Mem.InFlightHits, r.Mem.MABStallCycles,
		r.Mem.CastoutsElevated, r.Mem.CastoutsOrdinary, r.Mem.CastoutsDropped, r.Mem.SpecReadSavings)
	if r.Pipe.UOCSupplied > 0 {
		fmt.Printf("  uoc: %d μops supplied with icache/decode gated\n", r.Pipe.UOCSupplied)
	}
}
