GO ?= go

.PHONY: tier1 fmt-check vet build test race obs-smoke robust-smoke serve-smoke snapfork-smoke fabric-smoke trace-smoke predictor-smoke bench bench-smoke bench-compare bench-go

# tier1 is the gate every change must pass: formatting, vet, a full
# build, the test suite under the race detector, the observability
# smoke, the fault-injection smoke, the serving-layer smoke, and a
# benchmark smoke run proving the throughput harness still executes
# every generation, and the snapshot/fork smoke pinning warm-state
# bit-identity.
tier1: fmt-check vet build race obs-smoke robust-smoke serve-smoke snapfork-smoke fabric-smoke trace-smoke predictor-smoke bench-smoke

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# obs-smoke races the observability primitives: concurrent registry
# registration vs snapshot vs lock-free histogram recording, span-tracer
# ring behavior, and the zero-allocation guards for the disabled paths.
obs-smoke:
	$(GO) test -race ./internal/obs/...

# robust-smoke drives the sweep-robustness layer's fault-injection tests
# under the race detector: injected panics, livelocks, and corrupted
# results must quarantine cleanly even when workers race.
robust-smoke:
	$(GO) test -race ./internal/robust/...

# serve-smoke exercises the exyserve daemon's HTTP surface under the
# race detector: concurrent pooled sweeps must stay bit-identical to
# sequential runs, the queue must shed load with 429s, and drain must
# finish (or checkpoint) in-flight jobs.
serve-smoke:
	$(GO) test -race ./internal/serve/...

# snapfork-smoke races the warm-state snapshot/fork protocol: forked
# runs must be bit-identical to cold re-warms for every generation, the
# sweep API must produce identical results with and without a warm
# cache, and the pre-decoded steady-state step loop must not allocate.
snapfork-smoke:
	$(GO) test -race -run 'TestWarmForkMatchesColdRerun|TestRunWithWarmSnapshotsBitIdentical|TestDecodedStepLoopDoesNotAllocate' .

# fabric-smoke races the distributed sweep fabric end to end: shard
# planning/merge bit-identity under random partitions, the coordinator's
# lease/steal/cache protocol, and a 3-worker HTTP sweep with a worker
# killed mid-sweep whose lease must be stolen and whose merged result
# must stay byte-identical to a single-process run.
fabric-smoke:
	$(GO) test -race -run 'TestFabric|TestMergeShards|TestPlanShards' \
		./internal/fabric/... ./internal/serve/ ./internal/experiments/

# trace-smoke races the real-trace pipeline end to end: streaming
# ChampSim decode and SimPoint slicing of the committed fixture, the
# content-addressed store (ingest, dedup, bundle round-trip, eviction),
# weighted aggregation and its checkpoint/shard-merge bit-identity, and
# the upload -> weighted fabric sweep whose workers fetch the population
# over HTTP.
trace-smoke:
	$(GO) test -race ./internal/tracestore/... && \
	$(GO) test -race -run 'TestWeighted|TestTracePopulation|TestTraceShard|TestChampSim' ./internal/experiments/ ./internal/trace/ && \
	$(GO) test -race -run 'TestTracePipelineEndToEnd' ./internal/serve/

# predictor-smoke races the pluggable predictor lab end to end: the
# spec/registry wire round-trip, TAGE-SC-L and ITTAGE learning plus the
# Reset bit-identity pooling contract, the golden-MPKI fixture, the
# hypothetical-generation (M7) sweep bit-identity across plain, pooled/
# warm-forked, and merged-shard machinery, and the versioned job-request
# schema compat plus the three-path M7 serve acceptance.
predictor-smoke:
	$(GO) test -race -run 'TestPredictor|TestTAGE|TestITTAGE|TestFrontendM7|TestHypothetical|TestM7' \
		./internal/branch/ ./internal/experiments/ ./internal/serve/

# bench measures per-generation simulator throughput (min-of-5 batches)
# plus the population-scale RunPopulation sweep, and rewrites the
# committed baseline.
bench:
	$(GO) run ./cmd/exybench run --out=BENCH_throughput.json

# bench-smoke is the tier1 variant: one tiny batch per generation plus a
# tiny-spec population sweep, no baseline rewrite. It proves the harness
# (including the worker pools and simulator recycling) runs, not how fast.
bench-smoke:
	$(GO) run ./cmd/exybench run --smoke --out=""

# bench-compare re-measures the current build and fails on a >30%
# throughput regression against the committed baseline — both the
# per-generation rows and the population entry (the margin absorbs
# shared-machine noise; real hot-path regressions are larger).
bench-compare:
	$(GO) run ./cmd/exybench compare --base=BENCH_throughput.json

# bench-go runs the full Go benchmark suite (figures + throughput).
bench-go:
	$(GO) test -bench=. -benchtime=1x -run=NONE .
