GO ?= go

.PHONY: tier1 fmt-check vet build test race bench

# tier1 is the gate every change must pass: formatting, vet, a full
# build, and the test suite under the race detector.
tier1: fmt-check vet build race

fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run=NONE .
