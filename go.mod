module exysim

go 1.22
