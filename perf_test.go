// Guard tests for the hot-path performance properties: the steady-state
// step loop must not allocate, and population runs must be bit-identical
// regardless of worker scheduling.
package exysim

import (
	"reflect"
	"testing"

	"exysim/internal/core"
	"exysim/internal/workload"
)

// TestStepLoopDoesNotAllocate pins the zero-allocation property of the
// measured region: after warmup, stepping instructions through the
// heaviest configuration (M6) performs no heap allocations. Every
// microarchitectural table is preallocated at construction and every
// prefetch engine returns requests through a reused buffer, so a
// regression here means a new allocation crept into the per-instruction
// path.
func TestStepLoopDoesNotAllocate(t *testing.T) {
	g, ok := core.GenByName("M6")
	if !ok {
		t.Fatal("M6 missing")
	}
	sl, err := workload.ByName("specint/0", benchSpec)
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimulator(g)
	c := sim.Core()
	// Warm every table, ring and reused buffer with the first half of
	// the slice.
	half := len(sl.Insts) / 2
	for i := 0; i < half; i++ {
		in := sl.Insts[i]
		c.Step(&in)
	}
	rest := sl.Insts[half:]
	pos := 0
	avg := testing.AllocsPerRun(20, func() {
		// Step a window of instructions per run so the measurement
		// covers branches, loads, stores and prefetch trains.
		for i := 0; i < 512; i++ {
			in := rest[pos]
			c.Step(&in)
			pos++
			if pos == len(rest) {
				pos = 0
			}
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state step loop allocates: %.1f allocs per 512-inst window, want 0", avg)
	}
}

// TestResetAndRerunDoesNotAllocate pins the reuse protocol's performance
// property: once a pooled simulator has run its first slice, recycling it
// with Reset() and replaying a whole slice performs no heap allocations.
// Reset must therefore clear every table, ring and reused buffer in
// place — a regression here means some subsystem reallocates its backing
// storage (or the co-runner RNG re-seed escapes to the heap).
func TestResetAndRerunDoesNotAllocate(t *testing.T) {
	g, ok := core.GenByName("M6")
	if !ok {
		t.Fatal("M6 missing")
	}
	sl, err := workload.ByName("specint/0", benchSpec)
	if err != nil {
		t.Fatal(err)
	}
	sim := core.NewSimulator(g)
	// First slice on the fresh simulator: grows append-managed buffers
	// (MAB list, prefetch request buffers) to their steady capacity.
	sim.Run(sl)
	c := sim.Core()
	insts := sl.Insts
	avg := testing.AllocsPerRun(5, func() {
		sim.Reset()
		for i := range insts {
			c.Step(&insts[i])
		}
	})
	if avg != 0 {
		t.Fatalf("Reset+rerun allocates: %.1f allocs per slice, want 0", avg)
	}
}

// TestPopulationRunsDeterministic checks that two full population runs
// with the same spec produce bit-identical results even though slices
// fan out across worker goroutines in nondeterministic order. Under
// `go test -race` this also proves the workers share no mutable state.
func TestPopulationRunsDeterministic(t *testing.T) {
	spec := workload.SuiteSpec{SlicesPerFamily: 1, InstsPerSlice: 12_000, WarmupFrac: 0.25, Seed: 0xE59}
	a := popRun(t, spec)
	b := popRun(t, spec)
	if len(a.Results) != len(b.Results) {
		t.Fatalf("generation counts differ: %d vs %d", len(a.Results), len(b.Results))
	}
	for g := range a.Results {
		for s := range a.Results[g] {
			ra, rb := a.Results[g][s], b.Results[g][s]
			if !reflect.DeepEqual(ra, rb) {
				t.Errorf("gen %s slice %s: results differ between identical runs:\n  first:  %+v\n  second: %+v",
					a.Gens[g].Name, a.Slices[s].Name, ra, rb)
			}
		}
	}
}
